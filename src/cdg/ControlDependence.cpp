//===- cdg/ControlDependence.cpp - Control dependence ---------------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "cdg/ControlDependence.h"

#include "graph/Dominators.h"
#include "ir/Function.h"
#include "support/Statistic.h"

#include <algorithm>
#include <map>

using namespace depflow;

// The paper's O(E) claim about the factored CDG is a *size* claim: one CD
// set per cycle-equivalence class instead of one per edge keeps the total
// number of (class, branch) entries linear on structured programs.
// bench_cycle_equiv fits NumCDGFactoredEntries against E; the query
// counter sizes the construction work (classes x branches O(1) queries).
DEPFLOW_STATISTIC(NumCDGFactoredEntries, "cdg",
                  "Entries in the factored CDG (class -> branch edge)");
DEPFLOW_STATISTIC(NumCDGPDomQueries, "cdg",
                  "O(1) postdominance queries during factored-CDG build");

/// Collects the ids of all branch edges (out-edges of switch blocks).
static std::vector<unsigned> branchEdges(const Function &F,
                                         const CFGEdges &E) {
  std::vector<unsigned> Result;
  for (unsigned Id = 0, N = E.size(); Id != N; ++Id)
    if (E.edge(Id).From->numSuccessors() > 1)
      Result.push_back(Id);
  (void)F;
  return Result;
}

std::vector<std::vector<unsigned>>
depflow::nodeControlDependence(const Function &F, const CFGEdges &E) {
  std::vector<std::vector<unsigned>> CD(F.numBlocks());
  Digraph G = cfgDigraph(F);
  DomTree PDT(G.reversed(), F.exit()->id());

  for (unsigned EdgeId : branchEdges(F, E)) {
    const CFGEdge &Edge = E.edge(EdgeId);
    unsigned U = Edge.From->id();
    // Walk from the edge target up the postdominator tree, stopping at
    // ipdom(U); every node on the way is control dependent on this edge.
    // On back edges the walk passes through U itself; FOW's algorithm
    // traditionally records that as a loop self-dependence, but Definition 2
    // of the paper ("x does not postdominate n") excludes it, and we follow
    // the paper.
    int Stop = PDT.idom(U);
    int W = int(Edge.To->id());
    while (W >= 0 && W != Stop) {
      if (W != int(U))
        CD[unsigned(W)].push_back(EdgeId);
      W = PDT.idom(unsigned(W));
    }
  }
  for (auto &Set : CD) {
    std::sort(Set.begin(), Set.end());
    Set.erase(std::unique(Set.begin(), Set.end()), Set.end());
  }
  return CD;
}

std::vector<std::vector<unsigned>>
depflow::edgeControlDependenceBaseline(const Function &F, const CFGEdges &E) {
  unsigned NB = F.numBlocks();
  Digraph Split = edgeSplitDigraph(F, E);
  DomTree PDT(Split.reversed(), F.exit()->id());

  std::vector<std::vector<unsigned>> CD(Split.numNodes());
  for (unsigned EdgeId : branchEdges(F, E)) {
    const CFGEdge &Edge = E.edge(EdgeId);
    unsigned U = Edge.From->id();
    unsigned Dummy = NB + EdgeId;
    int Stop = PDT.idom(U);
    int W = int(Dummy);
    while (W >= 0 && W != Stop) {
      CD[unsigned(W)].push_back(EdgeId);
      W = PDT.idom(unsigned(W));
    }
  }
  // Keep only the edge-dummy rows, reindexed by edge id.
  std::vector<std::vector<unsigned>> Result(E.size());
  for (unsigned Id = 0, N = E.size(); Id != N; ++Id) {
    Result[Id] = std::move(CD[NB + Id]);
    std::sort(Result[Id].begin(), Result[Id].end());
    Result[Id].erase(std::unique(Result[Id].begin(), Result[Id].end()),
                     Result[Id].end());
  }
  return Result;
}

FactoredCDG depflow::buildFactoredCDG(const Function &F, const CFGEdges &E) {
  return buildFactoredCDG(F, E, cycleEquivalenceClasses(F, E));
}

FactoredCDG depflow::buildFactoredCDG(const Function &F, const CFGEdges &E,
                                      const CycleEquivalence &CE) {
  FactoredCDG Result;
  Result.Classes = CE;
  Result.ClassCD.assign(Result.Classes.NumClasses, {});

  // One representative edge per class.
  std::vector<int> Rep(Result.Classes.NumClasses, -1);
  for (unsigned Id = 0, N = E.size(); Id != N; ++Id)
    if (Rep[Result.Classes.ClassOf[Id]] < 0)
      Rep[Result.Classes.ClassOf[Id]] = int(Id);

  unsigned NB = F.numBlocks();
  Digraph Split = edgeSplitDigraph(F, E);
  DomTree PDT(Split.reversed(), F.exit()->id());
  std::vector<unsigned> Branches = branchEdges(F, E);

  // CD(representative x) = { branch edge e=(u,·) : x pdom dummy(e) and
  // x !pdom u }, answered with O(1) postdominance queries.
  for (unsigned C = 0; C != Result.Classes.NumClasses; ++C) {
    if (Rep[C] < 0)
      continue; // Class only contains the virtual edge.
    unsigned X = NB + unsigned(Rep[C]);
    for (unsigned B : Branches) {
      const CFGEdge &Edge = E.edge(B);
      NumCDGPDomQueries += 2;
      if (PDT.dominates(X, NB + B) && !PDT.dominates(X, Edge.From->id())) {
        Result.ClassCD[C].push_back(B);
        ++NumCDGFactoredEntries;
      }
    }
  }
  return Result;
}

std::vector<unsigned> depflow::edgeCDPartitionBaseline(const Function &F,
                                                       const CFGEdges &E,
                                                       unsigned &NumClasses) {
  std::vector<std::vector<unsigned>> CD = edgeControlDependenceBaseline(F, E);
  std::map<std::vector<unsigned>, unsigned> ClassOfSet;
  std::vector<unsigned> Class(E.size());
  for (unsigned Id = 0, N = E.size(); Id != N; ++Id) {
    auto [It, Inserted] =
        ClassOfSet.try_emplace(CD[Id], unsigned(ClassOfSet.size()));
    Class[Id] = It->second;
    (void)Inserted;
  }
  NumClasses = unsigned(ClassOfSet.size());
  return Class;
}
