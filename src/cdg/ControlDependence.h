//===- cdg/ControlDependence.h - Control dependence -------------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control dependence in two flavors:
///
///  * The classic Ferrante-Ottenstein-Warren computation over the
///    postdominator tree (the baseline the paper improves on), for nodes
///    and — via the edge-split graph — for edges.
///  * The paper's *factored CDG*: cycle-equivalence classes of edges (all
///    edges in a class have identical control dependence, Claim 1), with
///    one control-dependence set per class.
///
/// A control dependence is identified by a *branch edge*: a CFG edge whose
/// source has two successors (a switch node). Definition 2 of the paper:
/// x is control dependent on branch n iff x postdominates some path from n
/// but does not postdominate n; equivalently, for branch edge e = (n, v),
/// x postdominates e (i.e. v, in the split graph the dummy node of e) and
/// x does not postdominate n.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_CDG_CONTROLDEPENDENCE_H
#define DEPFLOW_CDG_CONTROLDEPENDENCE_H

#include "structure/CycleEquivalence.h"

#include <vector>

namespace depflow {

class Function;

/// Per-block control dependence: for each block id, the sorted list of
/// branch-edge ids it is control dependent on (FOW over the postdominator
/// tree of the block-level CFG).
std::vector<std::vector<unsigned>>
nodeControlDependence(const Function &F, const CFGEdges &E);

/// Per-edge control dependence via the edge-split graph: for each CFG edge
/// id, the sorted list of branch-edge ids it is control dependent on.
/// This is the baseline O(E·N)-worst-case computation.
std::vector<std::vector<unsigned>>
edgeControlDependenceBaseline(const Function &F, const CFGEdges &E);

/// The factored control dependence graph: the cycle-equivalence partition
/// of the edges plus one control-dependence set per class.
struct FactoredCDG {
  CycleEquivalence Classes;
  /// ClassCD[c] = sorted branch-edge ids every edge of class c depends on.
  std::vector<std::vector<unsigned>> ClassCD;

  const std::vector<unsigned> &edgeCD(unsigned EdgeId) const {
    return ClassCD[Classes.ClassOf[EdgeId]];
  }
};

/// Builds the factored CDG: O(E) for the partition plus one set
/// computation per class (not per edge).
FactoredCDG buildFactoredCDG(const Function &F, const CFGEdges &E);

/// Same, reusing an already-computed cycle-equivalence partition (the
/// analysis manager's cache). \p CE must come from
/// cycleEquivalenceClasses(F, E).
FactoredCDG buildFactoredCDG(const Function &F, const CFGEdges &E,
                             const CycleEquivalence &CE);

/// Partition edges by *equal control-dependence set* using the baseline
/// computation (for validating Claim 1 and for the benchmark's baseline
/// side). Returns a class id per edge.
std::vector<unsigned> edgeCDPartitionBaseline(const Function &F,
                                              const CFGEdges &E,
                                              unsigned &NumClasses);

} // namespace depflow

#endif // DEPFLOW_CDG_CONTROLDEPENDENCE_H
