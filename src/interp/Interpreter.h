//===- interp/Interpreter.h - Reference interpreter -------------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reference interpreter for the IR. Semantics:
///   * every variable starts at 0;
///   * parameters consume the first inputs, `read()` consumes the rest
///     (exhausted input reads as 0);
///   * phis in a block evaluate simultaneously using the predecessor;
///   * division is total (x/0 == 0), matching evalBinOp.
///
/// The interpreter counts dynamic evaluations of every binary expression,
/// which is how the tests verify the paper's partial redundancy elimination
/// never adds a computation to any execution path (Section 5.2).
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_INTERP_INTERPRETER_H
#define DEPFLOW_INTERP_INTERPRETER_H

#include "ir/Expression.h"
#include "ir/Function.h"
#include "support/Error.h"

#include <cstdint>
#include <map>
#include <vector>

namespace depflow {

/// Default step budget (fuel) for runFunction: generous for any program
/// the generators or tests produce, finite so the DiffOracle and fuzz
/// loops can never hang on a non-terminating program.
inline constexpr std::uint64_t DefaultInterpFuel = 1000000;

struct ExecResult {
  /// Values of the ret operands, valid only when Halted.
  std::vector<std::int64_t> Outputs;
  /// True if execution reached ret within the step budget.
  bool Halted = false;
  /// True if execution was cut off by the step budget (fuel) — the
  /// program may or may not terminate; it did not within MaxSteps.
  bool FuelExhausted = false;
  /// True if execution hit malformed IR (a block without a terminator, or
  /// a phi with no entry for the arriving edge). Never set for functions
  /// that pass the verifier; lets the fuzzer run arbitrary IR crash-free.
  bool Trapped = false;
  std::string TrapReason;
  std::uint64_t Steps = 0;
  /// Dynamic evaluation count per syntactic binary expression.
  std::map<Expression, std::uint64_t> ExprCounts;
  /// Dynamic trip count per block id.
  std::vector<std::uint64_t> BlockCounts;

  std::uint64_t countOf(const Expression &E) const {
    auto It = ExprCounts.find(E);
    return It == ExprCounts.end() ? 0 : It->second;
  }

  /// Success iff the run halted normally; a trap or fuel exhaustion comes
  /// back as a Status error naming the cause.
  Status status() const;
};

/// Runs \p F on \p Inputs for at most \p MaxSteps instructions.
ExecResult runFunction(const Function &F,
                       const std::vector<std::int64_t> &Inputs,
                       std::uint64_t MaxSteps = DefaultInterpFuel);

} // namespace depflow

#endif // DEPFLOW_INTERP_INTERPRETER_H
