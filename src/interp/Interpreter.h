//===- interp/Interpreter.h - Reference interpreter -------------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reference interpreter for the IR. Semantics:
///   * every variable starts at 0;
///   * parameters consume the first inputs, `read()` consumes the rest
///     (exhausted input reads as 0);
///   * phis in a block evaluate simultaneously using the predecessor;
///   * division is total (x/0 == 0), matching evalBinOp;
///   * `x = call f(a, b)` runs `f` in a fresh frame whose parameters are
///     the evaluated arguments; `read()` inside the callee consumes the
///     *same* input stream as the caller (one program, one stdin); the
///     call's value is the callee's first ret operand (0 if none). Step
///     fuel is shared across all frames, and call depth is capped so
///     runaway recursion traps instead of overflowing the host stack.
///
/// The interpreter counts dynamic evaluations of every binary expression,
/// which is how the tests verify the paper's partial redundancy elimination
/// never adds a computation to any execution path (Section 5.2).
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_INTERP_INTERPRETER_H
#define DEPFLOW_INTERP_INTERPRETER_H

#include "ir/Expression.h"
#include "ir/Module.h"
#include "support/Error.h"

#include <cstdint>
#include <map>
#include <vector>

namespace depflow {

/// Default step budget (fuel) for runFunction: generous for any program
/// the generators or tests produce, finite so the DiffOracle and fuzz
/// loops can never hang on a non-terminating program.
inline constexpr std::uint64_t DefaultInterpFuel = 1000000;

/// Call-depth cap for module execution: deep enough for any generated
/// call DAG, small enough that runaway recursion traps long before the
/// host stack is at risk.
inline constexpr unsigned DefaultInterpCallDepth = 256;

struct ExecResult {
  /// Values of the ret operands, valid only when Halted.
  std::vector<std::int64_t> Outputs;
  /// True if execution reached ret within the step budget.
  bool Halted = false;
  /// True if execution was cut off by the step budget (fuel) — the
  /// program may or may not terminate; it did not within MaxSteps.
  bool FuelExhausted = false;
  /// True if execution hit malformed IR (a block without a terminator, or
  /// a phi with no entry for the arriving edge). Never set for functions
  /// that pass the verifier; lets the fuzzer run arbitrary IR crash-free.
  bool Trapped = false;
  std::string TrapReason;
  std::uint64_t Steps = 0;
  /// Dynamic evaluation count per syntactic binary expression
  /// (accumulated across every frame in a module run).
  std::map<Expression, std::uint64_t> ExprCounts;
  /// Dynamic trip count per block id (root frame only in a module run).
  std::vector<std::uint64_t> BlockCounts;
  /// Values observed at the watch point (see ModuleExecOptions), in
  /// execution order across all frames. This is the slicing oracle's
  /// ground truth: a sliced module must reproduce it exactly.
  std::vector<std::int64_t> WatchTrace;

  std::uint64_t countOf(const Expression &E) const {
    auto It = ExprCounts.find(E);
    return It == ExprCounts.end() ? 0 : It->second;
  }

  /// Success iff the run halted normally; a trap or fuel exhaustion comes
  /// back as a Status error naming the cause.
  Status status() const;
};

/// Runs \p F on \p Inputs for at most \p MaxSteps instructions. \p F must
/// be call-free (there is no module to resolve callees against); a call
/// traps with "call outside a module".
ExecResult runFunction(const Function &F,
                       const std::vector<std::int64_t> &Inputs,
                       std::uint64_t MaxSteps = DefaultInterpFuel);

struct ModuleExecOptions {
  std::uint64_t MaxSteps = DefaultInterpFuel;
  unsigned MaxCallDepth = DefaultInterpCallDepth;
  /// When WatchFunc is non-empty, every execution of an instruction at
  /// source line WatchLine inside the function named WatchFunc appends to
  /// ExecResult::WatchTrace: the assigned value for a definition, the
  /// condition value for a conditional branch, each returned value for a
  /// ret. This is how the slice differential oracle observes the
  /// criterion without changing program semantics.
  std::string WatchFunc;
  unsigned WatchLine = 0;
};

/// Runs \p Entry (which must belong to \p M) on \p Inputs, resolving
/// calls against \p M. Fuel and the input stream are shared across
/// frames; BlockCounts cover the root frame only.
ExecResult runModule(const Module &M, const Function &Entry,
                     const std::vector<std::int64_t> &Inputs,
                     const ModuleExecOptions &Opts = {});

} // namespace depflow

#endif // DEPFLOW_INTERP_INTERPRETER_H
