//===- interp/Interpreter.cpp - Reference interpreter ---------------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

using namespace depflow;

Status ExecResult::status() const {
  if (Trapped)
    return Status::error("trapped: " + TrapReason);
  if (FuelExhausted)
    return Status::error("interpreter fuel exhausted after " +
                         std::to_string(Steps) + " step(s)");
  if (!Halted)
    return Status::error("execution did not halt");
  return Status::success();
}

ExecResult depflow::runFunction(const Function &F,
                                const std::vector<std::int64_t> &Inputs,
                                std::uint64_t MaxSteps) {
  ExecResult R;
  R.BlockCounts.assign(F.numBlocks(), 0);
  std::vector<std::int64_t> Vals(F.numVars(), 0);
  std::size_t NextInput = 0;
  auto ReadInput = [&]() -> std::int64_t {
    return NextInput < Inputs.size() ? Inputs[NextInput++] : 0;
  };
  for (VarId P : F.params())
    Vals[P] = ReadInput();

  auto Eval = [&](const Operand &O) -> std::int64_t {
    return O.isImm() ? O.imm() : Vals[O.var()];
  };

  const BasicBlock *Prev = nullptr;
  const BasicBlock *BB = F.entry();
  while (BB) {
    R.BlockCounts[BB->id()]++;
    // Evaluate phis as a parallel copy based on the arriving edge.
    std::vector<std::pair<VarId, std::int64_t>> PhiWrites;
    for (const auto &IPtr : BB->instructions()) {
      const auto *Phi = dyn_cast<PhiInst>(IPtr.get());
      if (!Phi)
        break;
      bool Found = false;
      for (unsigned K = 0, E = Phi->numIncoming(); K != E; ++K) {
        if (Phi->incomingBlock(K) == Prev) {
          PhiWrites.push_back({Phi->def(), Eval(Phi->incomingValue(K))});
          Found = true;
          break;
        }
      }
      if (!Found) {
        R.Trapped = true;
        R.TrapReason = "phi in block '" + BB->label() +
                       "' has no entry for the arriving edge";
        return R;
      }
      ++R.Steps;
    }
    for (auto [V, Value] : PhiWrites)
      Vals[V] = Value;

    const BasicBlock *Next = nullptr;
    for (const auto &IPtr : BB->instructions()) {
      const Instruction &I = *IPtr;
      if (isa<PhiInst>(&I))
        continue;
      if (R.Steps++ >= MaxSteps) {
        R.FuelExhausted = true;
        return R; // Fuel exhausted; Halted stays false.
      }
      switch (I.kind()) {
      case Instruction::Kind::Copy:
        Vals[cast<CopyInst>(&I)->def()] = Eval(cast<CopyInst>(&I)->src());
        break;
      case Instruction::Kind::Unary: {
        const auto *U = cast<UnaryInst>(&I);
        Vals[U->def()] = evalUnOp(U->op(), Eval(U->src()));
        break;
      }
      case Instruction::Kind::Binary: {
        const auto *B = cast<BinaryInst>(&I);
        Vals[B->def()] = evalBinOp(B->op(), Eval(B->lhs()), Eval(B->rhs()));
        ++R.ExprCounts[Expression{B->op(), B->lhs(), B->rhs()}];
        break;
      }
      case Instruction::Kind::Read:
        Vals[cast<ReadInst>(&I)->def()] = ReadInput();
        break;
      case Instruction::Kind::Phi:
        depflow_unreachable("phis handled before the main loop");
      case Instruction::Kind::Jump:
        Next = cast<JumpInst>(&I)->target();
        break;
      case Instruction::Kind::CondBr: {
        const auto *C = cast<CondBrInst>(&I);
        Next = Eval(C->cond()) != 0 ? C->trueTarget() : C->falseTarget();
        break;
      }
      case Instruction::Kind::Ret:
        for (const Operand &O : I.operands())
          R.Outputs.push_back(Eval(O));
        R.Halted = true;
        return R;
      }
    }
    if (!Next) {
      R.Trapped = true;
      R.TrapReason = "block '" + BB->label() + "' has no terminator";
      return R;
    }
    Prev = BB;
    BB = Next;
  }
  return R;
}
