//===- interp/Interpreter.cpp - Reference interpreter ---------------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

using namespace depflow;

Status ExecResult::status() const {
  if (Trapped)
    return Status::error("trapped: " + TrapReason);
  if (FuelExhausted)
    return Status::error("interpreter fuel exhausted after " +
                         std::to_string(Steps) + " step(s)");
  if (!Halted)
    return Status::error("execution did not halt");
  return Status::success();
}

namespace {

/// State shared by every frame of one execution: the module (null when
/// running a lone function), the input cursor, the fuel, and the result
/// being filled in. Frames recurse through runFrame; a false return means
/// execution stopped abnormally (trap or fuel) and the flags in R say why.
struct Machine {
  const Module *M = nullptr;
  const std::vector<std::int64_t> *Inputs = nullptr;
  std::size_t NextInput = 0;
  std::uint64_t MaxSteps = DefaultInterpFuel;
  unsigned MaxCallDepth = DefaultInterpCallDepth;
  std::string WatchFunc;
  unsigned WatchLine = 0;
  ExecResult *R = nullptr;

  std::int64_t readInput() {
    return NextInput < Inputs->size() ? (*Inputs)[NextInput++] : 0;
  }

  bool watching(const Function &F, const Instruction &I) const {
    return WatchLine != 0 && I.line() == WatchLine && F.name() == WatchFunc;
  }

  bool trap(std::string Reason) {
    R->Trapped = true;
    R->TrapReason = std::move(Reason);
    return false;
  }

  /// Runs one frame of \p F with parameter values \p Args. On normal ret,
  /// fills \p RetVals with the evaluated ret operands and returns true.
  /// \p IsRoot frames own BlockCounts and the program Outputs.
  bool runFrame(const Function &F, const std::vector<std::int64_t> &Args,
                unsigned Depth, bool IsRoot,
                std::vector<std::int64_t> &RetVals) {
    std::vector<std::int64_t> Vals(F.numVars(), 0);
    for (std::size_t P = 0; P != F.params().size(); ++P)
      Vals[F.params()[P]] = P < Args.size() ? Args[P] : 0;

    auto Eval = [&](const Operand &O) -> std::int64_t {
      return O.isImm() ? O.imm() : Vals[O.var()];
    };

    const BasicBlock *Prev = nullptr;
    const BasicBlock *BB = F.entry();
    while (BB) {
      if (IsRoot)
        R->BlockCounts[BB->id()]++;
      // Evaluate phis as a parallel copy based on the arriving edge.
      std::vector<std::pair<VarId, std::int64_t>> PhiWrites;
      for (const auto &IPtr : BB->instructions()) {
        const auto *Phi = dyn_cast<PhiInst>(IPtr.get());
        if (!Phi)
          break;
        bool Found = false;
        for (unsigned K = 0, E = Phi->numIncoming(); K != E; ++K) {
          if (Phi->incomingBlock(K) == Prev) {
            PhiWrites.push_back({Phi->def(), Eval(Phi->incomingValue(K))});
            Found = true;
            break;
          }
        }
        if (!Found)
          return trap("phi in block '" + BB->label() +
                      "' has no entry for the arriving edge");
        ++R->Steps;
      }
      for (auto [V, Value] : PhiWrites)
        Vals[V] = Value;

      const BasicBlock *Next = nullptr;
      for (const auto &IPtr : BB->instructions()) {
        const Instruction &I = *IPtr;
        if (isa<PhiInst>(&I))
          continue;
        if (R->Steps++ >= MaxSteps) {
          R->FuelExhausted = true;
          return false; // Fuel exhausted; Halted stays false.
        }
        switch (I.kind()) {
        case Instruction::Kind::Copy:
          Vals[cast<CopyInst>(&I)->def()] = Eval(cast<CopyInst>(&I)->src());
          break;
        case Instruction::Kind::Unary: {
          const auto *U = cast<UnaryInst>(&I);
          Vals[U->def()] = evalUnOp(U->op(), Eval(U->src()));
          break;
        }
        case Instruction::Kind::Binary: {
          const auto *B = cast<BinaryInst>(&I);
          Vals[B->def()] = evalBinOp(B->op(), Eval(B->lhs()), Eval(B->rhs()));
          ++R->ExprCounts[Expression{B->op(), B->lhs(), B->rhs()}];
          break;
        }
        case Instruction::Kind::Read:
          Vals[cast<ReadInst>(&I)->def()] = readInput();
          break;
        case Instruction::Kind::Call: {
          const auto *C = cast<CallInst>(&I);
          if (!M)
            return trap("call to '" + C->callee() + "' outside a module");
          const Function *Callee = M->lookup(C->callee());
          if (!Callee)
            return trap("call to unknown callee '" + C->callee() + "'");
          if (Depth + 1 >= MaxCallDepth)
            return trap("call depth limit (" +
                        std::to_string(MaxCallDepth) + ") exceeded at '" +
                        C->callee() + "'");
          std::vector<std::int64_t> CallArgs;
          CallArgs.reserve(C->numArgs());
          for (const Operand &O : C->operands())
            CallArgs.push_back(Eval(O));
          std::vector<std::int64_t> CalleeRets;
          if (!runFrame(*Callee, CallArgs, Depth + 1, false, CalleeRets))
            return false;
          Vals[C->def()] = CalleeRets.empty() ? 0 : CalleeRets[0];
          break;
        }
        case Instruction::Kind::Phi:
          depflow_unreachable("phis handled before the main loop");
        case Instruction::Kind::Jump:
          Next = cast<JumpInst>(&I)->target();
          break;
        case Instruction::Kind::CondBr: {
          const auto *C = cast<CondBrInst>(&I);
          if (watching(F, I))
            R->WatchTrace.push_back(Eval(C->cond()));
          Next = Eval(C->cond()) != 0 ? C->trueTarget() : C->falseTarget();
          break;
        }
        case Instruction::Kind::Ret:
          for (const Operand &O : I.operands())
            RetVals.push_back(Eval(O));
          if (watching(F, I))
            for (std::int64_t V : RetVals)
              R->WatchTrace.push_back(V);
          if (IsRoot) {
            R->Outputs = RetVals;
            R->Halted = true;
          }
          return true;
        }
        if (const auto *D = dyn_cast<DefInst>(&I); D && watching(F, I))
          R->WatchTrace.push_back(Vals[D->def()]);
      }
      if (!Next)
        return trap("block '" + BB->label() + "' has no terminator");
      Prev = BB;
      BB = Next;
    }
    return trap("function '" + F.name() + "' has no entry block");
  }
};

} // namespace

ExecResult depflow::runFunction(const Function &F,
                                const std::vector<std::int64_t> &Inputs,
                                std::uint64_t MaxSteps) {
  ExecResult R;
  R.BlockCounts.assign(F.numBlocks(), 0);
  Machine Mach;
  Mach.Inputs = &Inputs;
  Mach.MaxSteps = MaxSteps;
  Mach.R = &R;
  std::vector<std::int64_t> Args;
  Args.reserve(F.params().size());
  for (std::size_t P = 0; P != F.params().size(); ++P)
    Args.push_back(Mach.readInput());
  std::vector<std::int64_t> RetVals;
  Mach.runFrame(F, Args, 0, true, RetVals);
  return R;
}

ExecResult depflow::runModule(const Module &M, const Function &Entry,
                              const std::vector<std::int64_t> &Inputs,
                              const ModuleExecOptions &Opts) {
  ExecResult R;
  R.BlockCounts.assign(Entry.numBlocks(), 0);
  Machine Mach;
  Mach.M = &M;
  Mach.Inputs = &Inputs;
  Mach.MaxSteps = Opts.MaxSteps;
  Mach.MaxCallDepth = Opts.MaxCallDepth;
  Mach.WatchFunc = Opts.WatchFunc;
  Mach.WatchLine = Opts.WatchLine;
  Mach.R = &R;
  std::vector<std::int64_t> Args;
  Args.reserve(Entry.params().size());
  for (std::size_t P = 0; P != Entry.params().size(); ++P)
    Args.push_back(Mach.readInput());
  std::vector<std::int64_t> RetVals;
  Mach.runFrame(Entry, Args, 0, true, RetVals);
  return R;
}
