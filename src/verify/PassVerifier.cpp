//===- verify/PassVerifier.cpp - Post-pass invariant checkers -------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "verify/PassVerifier.h"

#include "cdg/ControlDependence.h"
#include "core/DepFlowGraph.h"
#include "dataflow/DefUse.h"
#include "graph/Digraph.h"
#include "graph/Dominators.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "structure/CycleEquivalence.h"

#include <algorithm>
#include <map>
#include <set>

using namespace depflow;

namespace {

bool hasPhis(const Function &F) {
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      if (isa<PhiInst>(I.get()))
        return true;
  return false;
}

/// Checks that two class-id vectors induce the same partition; appends a
/// diagnostic per divergence (first few only — one is enough to act on).
void checkSamePartition(const std::vector<unsigned> &Fast,
                        const std::vector<unsigned> &Reference,
                        const std::string &What, Status &S) {
  if (Fast.size() != Reference.size()) {
    S.addError(What + ": partition sizes differ (" +
               std::to_string(Fast.size()) + " vs " +
               std::to_string(Reference.size()) + ")");
    return;
  }
  std::map<unsigned, unsigned> FastToRef, RefToFast;
  for (std::size_t I = 0; I != Fast.size(); ++I) {
    auto ItF = FastToRef.try_emplace(Fast[I], Reference[I]).first;
    if (ItF->second != Reference[I])
      S.addError(What + ": edge " + std::to_string(I) + " splits fast class " +
                 std::to_string(Fast[I]) +
                 " that the reference keeps together");
    auto ItR = RefToFast.try_emplace(Reference[I], Fast[I]).first;
    if (ItR->second != Fast[I])
      S.addError(What + ": edge " + std::to_string(I) +
                 " merges reference class " + std::to_string(Reference[I]) +
                 " that the fast algorithm splits");
    if (S.numErrors() >= 4)
      return; // Enough to debug from; avoid drowning the report.
  }
}

/// Definitions (Def instructions; nullptr = the entry definition) reaching
/// DFG node \p UseNode backwards through dependence edges. Defs kill.
std::set<const Instruction *> dfgDefsReaching(const DepFlowGraph &G,
                                              unsigned UseNode) {
  std::set<const Instruction *> Defs;
  std::vector<bool> Seen(G.numNodes(), false);
  std::vector<unsigned> Stack{UseNode};
  Seen[UseNode] = true;
  while (!Stack.empty()) {
    unsigned N = Stack.back();
    Stack.pop_back();
    const auto &Node = G.node(N);
    if (N != UseNode && Node.Kind == DepFlowGraph::NodeKind::Def) {
      Defs.insert(Node.Inst);
      continue;
    }
    if (Node.Kind == DepFlowGraph::NodeKind::Entry) {
      Defs.insert(nullptr);
      continue;
    }
    for (unsigned EId : G.inEdges(N)) {
      unsigned Src = G.edge(EId).Src;
      if (!Seen[Src]) {
        Seen[Src] = true;
        Stack.push_back(Src);
      }
    }
  }
  return Defs;
}

} // namespace

Status depflow::verifySSAForm(Function &F) {
  Status S = Status::fromMessages(verifyFunction(F));
  if (!S.ok())
    return S;

  // Single static definition per variable.
  std::vector<const Instruction *> DefOf(F.numVars(), nullptr);
  std::vector<int> DefBlock(F.numVars(), -1), DefIndex(F.numVars(), -1);
  for (const auto &BB : F.blocks()) {
    const auto &Insts = BB->instructions();
    for (unsigned Idx = 0; Idx != Insts.size(); ++Idx) {
      const auto *D = dyn_cast<DefInst>(Insts[Idx].get());
      if (!D)
        continue;
      if (DefOf[D->def()])
        S.addError("variable '" + F.varName(D->def()) +
                   "' has more than one static definition ('" +
                   printInstruction(F, *DefOf[D->def()]) + "' and '" +
                   printInstruction(F, *D) + "')");
      DefOf[D->def()] = D;
      DefBlock[D->def()] = int(BB->id());
      DefIndex[D->def()] = int(Idx);
    }
  }

  // Definitions dominate uses. Variables with no defining instruction are
  // entry definitions (parameters / implicit 0) and dominate everything.
  DomTree DT(cfgDigraph(F), F.entry()->id());
  auto DefReachesUse = [&](VarId V, const BasicBlock *UseBB,
                           int UseIdx) -> bool {
    if (!DefOf[V])
      return true;
    unsigned DB = unsigned(DefBlock[V]);
    if (DB == UseBB->id())
      return UseIdx < 0 /*end of block*/ || DefIndex[V] < UseIdx;
    return DT.strictlyDominates(DB, UseBB->id());
  };
  for (const auto &BB : F.blocks()) {
    const auto &Insts = BB->instructions();
    for (unsigned Idx = 0; Idx != Insts.size(); ++Idx) {
      const Instruction *I = Insts[Idx].get();
      if (const auto *Phi = dyn_cast<PhiInst>(I)) {
        for (unsigned K = 0, E = Phi->numIncoming(); K != E; ++K) {
          const Operand &Op = Phi->incomingValue(K);
          if (Op.isVar() &&
              !DefReachesUse(Op.var(), Phi->incomingBlock(K), -1))
            S.addError("phi use of '" + F.varName(Op.var()) + "' in block '" +
                       BB->label() + "' is not dominated by its definition " +
                       "at the end of '" + Phi->incomingBlock(K)->label() +
                       "'");
        }
        continue;
      }
      for (const Operand &Op : I->operands())
        if (Op.isVar() && !DefReachesUse(Op.var(), BB.get(), int(Idx)))
          S.addError("use of '" + F.varName(Op.var()) + "' in '" +
                     printInstruction(F, *I) + "' (block '" + BB->label() +
                     "') is not dominated by its definition");
    }
  }

  // Pruned placement: every phi must (transitively, through other phis)
  // feed a non-phi use. A phi web no non-phi instruction reads is dead and
  // would have been pruned by liveness / dead-edge removal.
  std::set<VarId> LiveVars;
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions()) {
      if (isa<PhiInst>(I.get()))
        continue;
      for (const Operand &Op : I->operands())
        if (Op.isVar())
          LiveVars.insert(Op.var());
    }
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &BB : F.blocks())
      for (const auto &I : BB->instructions()) {
        const auto *Phi = dyn_cast<PhiInst>(I.get());
        if (!Phi || !LiveVars.count(Phi->def()))
          continue;
        for (unsigned K = 0, E = Phi->numIncoming(); K != E; ++K) {
          const Operand &Op = Phi->incomingValue(K);
          if (Op.isVar() && LiveVars.insert(Op.var()).second)
            Changed = true;
        }
      }
  }
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      if (const auto *Phi = dyn_cast<PhiInst>(I.get()))
        if (!LiveVars.count(Phi->def()))
          S.addError("phi for '" + F.varName(Phi->def()) + "' in block '" +
                     BB->label() +
                     "' never reaches a non-phi use (placement is not "
                     "pruned)");
  return S;
}

Status depflow::verifyDFGWellFormed(Function &F) {
  Status S = Status::fromMessages(verifyFunction(F));
  if (!S.ok())
    return S;
  if (hasPhis(F))
    return Status::error(
        "DFG well-formedness requires phi-free IR (run before SSA)");

  CFGEdges E(F);
  DepFlowGraph G = DepFlowGraph::build(F, E);

  // Structural conditions: edges stay within one variable's slice, switch
  // and merge nodes sit at switch/merge blocks, ports are in range.
  for (unsigned Id = 0; Id != G.numEdges(); ++Id) {
    const auto &Ed = G.edge(Id);
    if (Ed.Src >= G.numNodes() || Ed.Dst >= G.numNodes()) {
      S.addError("dependence edge " + std::to_string(Id) +
                 " references an out-of-range node");
      continue;
    }
    if (G.node(Ed.Src).Var != Ed.Var || G.node(Ed.Dst).Var != Ed.Var)
      S.addError("dependence edge " + std::to_string(Id) +
                 " crosses variables ('" + G.nodeLabel(F, Ed.Src) +
                 "' -> '" + G.nodeLabel(F, Ed.Dst) + "')");
    const auto &Src = G.node(Ed.Src);
    if (Src.Kind == DepFlowGraph::NodeKind::Switch &&
        Ed.SrcPort >= Src.Block->numSuccessors())
      S.addError("switch out-port " + std::to_string(Ed.SrcPort) +
                 " out of range at '" + G.nodeLabel(F, Ed.Src) + "'");
    const auto &Dst = G.node(Ed.Dst);
    if (Dst.Kind == DepFlowGraph::NodeKind::Merge &&
        Ed.DstPort >= Dst.Block->numPredecessors())
      S.addError("merge in-port " + std::to_string(Ed.DstPort) +
                 " out of range at '" + G.nodeLabel(F, Ed.Dst) + "'");
  }
  for (unsigned N = 0; N != G.numNodes(); ++N) {
    const auto &Node = G.node(N);
    if (Node.Kind == DepFlowGraph::NodeKind::Switch && !Node.Block->isSwitch())
      S.addError("switch node '" + G.nodeLabel(F, N) +
                 "' at a block with a single successor");
    if (Node.Kind == DepFlowGraph::NodeKind::Merge && !Node.Block->isMerge())
      S.addError("merge node '" + G.nodeLabel(F, N) +
                 "' at a block with a single predecessor");
  }

  // Dead-edge-removal invariant: every node reaches some use.
  {
    std::vector<bool> Seen(G.numNodes(), false);
    std::vector<unsigned> Stack;
    for (unsigned N = 0; N != G.numNodes(); ++N)
      if (G.node(N).Kind == DepFlowGraph::NodeKind::Use) {
        Seen[N] = true;
        Stack.push_back(N);
      }
    while (!Stack.empty()) {
      unsigned N = Stack.back();
      Stack.pop_back();
      for (unsigned EId : G.inEdges(N)) {
        unsigned Src = G.edge(EId).Src;
        if (!Seen[Src]) {
          Seen[Src] = true;
          Stack.push_back(Src);
        }
      }
    }
    for (unsigned N = 0; N != G.numNodes(); ++N)
      if (!Seen[N])
        S.addError("DFG node '" + G.nodeLabel(F, N) +
                   "' reaches no use (dead-edge removal missed it)");
  }

  // Per-CFG-edge dependence map consistency (the Section 5.1 projection
  // hook): the recorded source node must exist and carry the variable.
  for (VarId V = 0; V <= G.controlVar(); ++V)
    for (unsigned Id = 0; Id != E.size(); ++Id) {
      auto [N, Port] = G.depAtEdge(Id, V);
      if (N < 0)
        continue;
      if (unsigned(N) >= G.numNodes())
        S.addError("dependence map for CFG edge " + std::to_string(Id) +
                   " references an out-of-range node");
      else if (G.node(unsigned(N)).Var != V)
        S.addError("dependence map for CFG edge " + std::to_string(Id) +
                   " points at '" + G.nodeLabel(F, unsigned(N)) +
                   "' which carries a different variable");
      else if (G.node(unsigned(N)).Kind == DepFlowGraph::NodeKind::Switch &&
               Port >= G.node(unsigned(N)).Block->numSuccessors())
        S.addError("dependence map for CFG edge " + std::to_string(Id) +
                   " uses an out-of-range switch port");
    }

  // Definition 6 / Theorem 1 semantics: for every use, the definitions
  // with a dependence path to it equal the classic reaching definitions.
  ReachingDefs RD(F);
  for (const ReachingDefs::Use &U : RD.uses()) {
    int UseNode = G.useNode(U.I, U.OpIdx);
    if (UseNode < 0) {
      S.addError("use of '" + F.varName(U.Var) + "' in '" +
                 printInstruction(F, *U.I) + "' has no DFG use node");
      continue;
    }
    std::set<const Instruction *> ViaDFG =
        dfgDefsReaching(G, unsigned(UseNode));
    auto Classic = RD.defsReaching(U.I, U.OpIdx);
    std::set<const Instruction *> ViaRD(Classic.begin(), Classic.end());
    if (ViaDFG != ViaRD) {
      std::string Msg = "reaching definitions diverge at use of '" +
                        F.varName(U.Var) + "' in '" +
                        printInstruction(F, *U.I) + "': DFG sees {";
      for (const Instruction *D : ViaDFG)
        Msg += (D ? printInstruction(F, *D) : std::string("entry")) + "; ";
      Msg += "} classic sees {";
      for (const Instruction *D : ViaRD)
        Msg += (D ? printInstruction(F, *D) : std::string("entry")) + "; ";
      Msg += "}";
      S.addError(Msg);
    }
    if (S.numErrors() >= 8)
      break;
  }
  return S;
}

Status depflow::crossCheckCycleEquivalence(Function &F) {
  Status S = Status::fromMessages(verifyFunction(F));
  if (!S.ok())
    return S;
  CFGEdges E(F);
  CycleEquivalence CE = cycleEquivalenceClasses(F, E);

  std::vector<UEdge> Directed;
  for (unsigned Id = 0; Id != E.size(); ++Id)
    Directed.push_back({E.edge(Id).From->id(), E.edge(Id).To->id()});
  Directed.push_back({F.exit()->id(), F.entry()->id()});
  unsigned BruteClasses = 0;
  std::vector<unsigned> Brute =
      bruteForceDirectedCycleEquivalence(F.numBlocks(), Directed,
                                         BruteClasses);
  std::vector<unsigned> Fast = CE.ClassOf;
  Fast.push_back(CE.VirtualClass);
  if (CE.NumClasses != BruteClasses)
    S.addError("cycle equivalence class counts differ: fast " +
               std::to_string(CE.NumClasses) + " vs reference " +
               std::to_string(BruteClasses));
  checkSamePartition(Fast, Brute, "cycle equivalence", S);
  return S;
}

Status depflow::crossCheckControlDependence(Function &F) {
  Status S = Status::fromMessages(verifyFunction(F));
  if (!S.ok())
    return S;
  CFGEdges E(F);
  FactoredCDG Factored = buildFactoredCDG(F, E);
  std::vector<std::vector<unsigned>> Baseline =
      edgeControlDependenceBaseline(F, E);
  for (unsigned Id = 0; Id != E.size(); ++Id) {
    if (Factored.edgeCD(Id) == Baseline[Id])
      continue;
    auto Render = [&](const std::vector<unsigned> &CD) {
      std::string Out = "{";
      for (unsigned B : CD)
        Out += E.edge(B).From->label() + "->" + E.edge(B).To->label() + "; ";
      return Out + "}";
    };
    S.addError("control dependence diverges on edge " +
               E.edge(Id).From->label() + "->" + E.edge(Id).To->label() +
               ": factored " + Render(Factored.edgeCD(Id)) + " vs baseline " +
               Render(Baseline[Id]));
    if (S.numErrors() >= 4)
      break;
  }
  return S;
}

Status depflow::verifyPassInvariants(Function &F, const VerifyOptions &Opts) {
  Status S = Status::fromMessages(verifyFunction(F));
  if (!S.ok()) {
    S.addError("offending program:\n" + printFunction(F));
    return S;
  }
  const bool Phis = hasPhis(F);
  if (Opts.ExpectSSA)
    S.append(verifySSAForm(F));
  if (Opts.CheckDFG && !Phis)
    S.append(verifyDFGWellFormed(F));
  if (Opts.CrossCheckStructure && F.numEdges() <= Opts.MaxCrossCheckEdges) {
    S.append(crossCheckCycleEquivalence(F));
    S.append(crossCheckControlDependence(F));
  }
  if (!S.ok())
    S.addError("offending program:\n" + printFunction(F));
  return S;
}
