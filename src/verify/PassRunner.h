//===- verify/PassRunner.h - Legacy checked pass entry ----------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The historical home of the pass registry and the single-shot checked
/// `runPass` entry. The registry now lives in pass/Pass.h and managed
/// execution in pass/PassPipeline.h (re-exported here for source
/// compatibility); the unmanaged `runPass(F, P)` below survives for one
/// release as a shim that builds a throwaway FunctionAnalysisManager per
/// call. New code should hold a manager (or a PassPipeline) and use
/// `runPass(F, P, AM)` so analyses are cached across passes.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_VERIFY_PASSRUNNER_H
#define DEPFLOW_VERIFY_PASSRUNNER_H

#include "ir/Expression.h"
#include "ir/Function.h"
#include "pass/Pass.h"
#include "pass/PassPipeline.h"
#include "support/Error.h"

#include <memory>
#include <vector>

namespace depflow {

/// Deprecated shim: runs \p P on \p F with a fresh analysis manager, so
/// every analysis is rebuilt from scratch. Same checked contract as
/// runPass(F, P, AM). Prefer the managed overload (pass/PassPipeline.h).
Status runPass(Function &F, PassId P, const PassOptions &Opts = {});

/// Clones \p F by printing and re-parsing it (the IR round-trips by
/// construction; a failure to do so is itself a bug and yields an error).
/// Variable *ids* may be renumbered; names and semantics are preserved.
Status cloneFunction(const Function &F, std::unique_ptr<Function> &Out);

/// The binary expressions of \p F eligible for PRE — what the oracle
/// watches for the "never adds a computation" guarantee.
std::vector<Expression> preWatchedExpressions(const Function &F);

} // namespace depflow

#endif // DEPFLOW_VERIFY_PASSRUNNER_H
