//===- verify/PassRunner.h - Named passes with checked entry ----*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One registry of the transformation passes depflow-opt exposes, with
/// recoverable entry points: each pass validates its preconditions (a
/// verified CFG; phi-free IR for the DFG-based passes) and returns a
/// failing Status instead of tripping an internal assert when they do not
/// hold. depflow-opt, depflow-fuzz, and the differential oracle all drive
/// passes through this interface so they agree on what "--pre" means.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_VERIFY_PASSRUNNER_H
#define DEPFLOW_VERIFY_PASSRUNNER_H

#include "ir/Expression.h"
#include "ir/Function.h"
#include "support/Error.h"

#include <optional>
#include <string_view>
#include <vector>

namespace depflow {

enum class PassId : std::uint8_t {
  Separate,     // separateComputation normalization
  ConstProp,    // DFG conditional constant propagation + DCE
  ConstPropCFG, // same via the CFG algorithm (Figure 4a)
  PRE,          // Morel-Renvoise over every expression (DFG ANT engine)
  PREBusy,      // busy code motion instead
  SSA,          // pruned SSA via Cytron placement
  SSADfg,       // pruned SSA via the DFG route
};

/// All passes, in the order depflow-opt applies them.
const std::vector<PassId> &allPasses();

/// Command-line name ("constprop", "ssa-dfg", ...).
const char *passName(PassId P);
std::optional<PassId> passByName(std::string_view Name);

/// True if the pass leaves the function in SSA form.
bool passProducesSSA(PassId P);

struct PassOptions {
  /// Enable the x==c predicate refinement during constant propagation.
  bool Predicates = false;
};

/// Runs \p P on \p F after validating preconditions. On precondition
/// failure, \p F is untouched and the Status reports why; after a
/// successful run the function re-verifies (a failure there is reported as
/// an internal invariant violation, not a precondition error).
Status runPass(Function &F, PassId P, const PassOptions &Opts = {});

/// Clones \p F by printing and re-parsing it (the IR round-trips by
/// construction; a failure to do so is itself a bug and yields an error).
/// Variable *ids* may be renumbered; names and semantics are preserved.
Status cloneFunction(const Function &F, std::unique_ptr<Function> &Out);

/// The binary expressions of \p F eligible for PRE — what the oracle
/// watches for the "never adds a computation" guarantee.
std::vector<Expression> preWatchedExpressions(const Function &F);

} // namespace depflow

#endif // DEPFLOW_VERIFY_PASSRUNNER_H
