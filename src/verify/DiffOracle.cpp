//===- verify/DiffOracle.cpp - Differential semantic oracle ---------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "verify/DiffOracle.h"

#include "dataflow/PRE.h"
#include "interp/Interpreter.h"
#include "ir/Parser.h"
#include "ir/Printer.h"

using namespace depflow;

namespace {

std::string renderInputs(const std::vector<std::int64_t> &Inputs) {
  std::string S = "[";
  for (std::size_t I = 0; I != Inputs.size(); ++I)
    S += (I ? "," : "") + std::to_string(Inputs[I]);
  return S + "]";
}

std::string renderOutputs(const std::vector<std::int64_t> &Outputs) {
  return renderInputs(Outputs);
}

/// Re-keys \p Ex from \p From's variable numbering onto \p To's, matching
/// variables by name. Returns false if a variable does not exist in \p To
/// (then \p To cannot compute the expression at all).
bool translateExpression(const Function &From, const Function &To,
                         Expression &Ex) {
  auto Translate = [&](Operand &O) {
    if (!O.isVar())
      return true;
    int V = To.lookupVar(From.varName(O.var()));
    if (V < 0)
      return false;
    O = Operand::var(unsigned(V));
    return true;
  };
  return Translate(Ex.Lhs) && Translate(Ex.Rhs);
}

} // namespace

Status depflow::diffOneExecution(const Function &Original,
                                 const Function &Transformed,
                                 const std::vector<std::int64_t> &Inputs,
                                 const OracleOptions &Opts) {
  Status S;
  ExecResult Before = runFunction(Original, Inputs, Opts.MaxSteps);
  // Passes may insert blocks and phis, so allow the transformed side a
  // proportionally larger budget before calling "it hangs" a divergence.
  ExecResult After =
      runFunction(Transformed, Inputs, Opts.MaxSteps * 4 + 1024);
  const std::string On = " on inputs " + renderInputs(Inputs);

  if (Before.Trapped || After.Trapped) {
    if (Before.Trapped != After.Trapped)
      S.addError("trap divergence" + On + ": original " +
                 (Before.Trapped ? "trapped (" + Before.TrapReason + ")"
                                 : "ran") +
                 ", transformed " +
                 (After.Trapped ? "trapped (" + After.TrapReason + ")"
                                : "ran"));
    return S; // Both trapped: malformed input, nothing to compare.
  }
  if (!Before.Halted)
    return S; // Original diverges within budget; outputs are unobservable.
  if (!After.Halted) {
    S.addError("transformed function fails to halt" + On +
               " though the original halts after " +
               std::to_string(Before.Steps) + " steps");
    return S;
  }
  if (Before.Outputs != After.Outputs)
    S.addError("output mismatch" + On + ": original " +
               renderOutputs(Before.Outputs) + ", transformed " +
               renderOutputs(After.Outputs));

  if (Opts.NoNewComputationsOf)
    for (const Expression &Ex : *Opts.NoNewComputationsOf) {
      Expression OrigEx = Ex;
      std::uint64_t BeforeCount =
          translateExpression(Transformed, Original, OrigEx)
              ? Before.countOf(OrigEx)
              : 0;
      if (After.countOf(Ex) > BeforeCount)
        S.addError("transformed function computes '" +
                   printExpression(Transformed, Ex) + "' " +
                   std::to_string(After.countOf(Ex)) + " times vs " +
                   std::to_string(BeforeCount) + On +
                   " (PRE added a computation to an executed path)");
    }
  return S;
}

Status depflow::diffExecutions(const Function &Original,
                               const Function &Transformed, RNG &Rand,
                               const OracleOptions &Opts) {
  Status S;
  for (unsigned Run = 0; Run != Opts.Runs; ++Run) {
    std::vector<std::int64_t> Inputs(Opts.InputLen);
    for (std::int64_t &V : Inputs)
      V = Rand.nextInRange(Opts.InputMin, Opts.InputMax);
    S.append(diffOneExecution(Original, Transformed, Inputs, Opts));
    if (!S.ok()) {
      S.addError("original:\n" + printFunction(Original) + "transformed:\n" +
                 printFunction(Transformed));
      return S; // First witness is enough; keep the report small.
    }
  }
  return S;
}

Status depflow::cloneFunction(const Function &F,
                              std::unique_ptr<Function> &Out) {
  std::string Text = printFunction(F);
  ParseResult R = parseFunction(Text);
  if (!R.ok())
    return Status::error("print->parse round-trip failed: " + R.Error +
                         "\nprinted text:\n" + Text);
  Out = std::move(R.Fn);
  return Status::success();
}

std::vector<Expression> depflow::preWatchedExpressions(const Function &F) {
  return collectExpressions(F);
}
