//===- verify/PassRunner.cpp - Legacy checked pass entry ------------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "verify/PassRunner.h"

#include "dataflow/PRE.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "pass/AnalysisManager.h"

using namespace depflow;

Status depflow::runPass(Function &F, PassId P, const PassOptions &Opts) {
  // One throwaway manager per call: correctness-equivalent to the managed
  // path, but pays full analysis reconstruction — callers that run more
  // than one pass should hold a FunctionAnalysisManager instead.
  FunctionAnalysisManager AM(F);
  return runPass(F, P, AM, Opts);
}

Status depflow::cloneFunction(const Function &F,
                              std::unique_ptr<Function> &Out) {
  std::string Text = printFunction(F);
  ParseResult R = parseFunction(Text);
  if (!R.ok())
    return Status::error("print->parse round-trip failed: " + R.Error +
                         "\nprinted text:\n" + Text);
  Out = std::move(R.Fn);
  return Status::success();
}

std::vector<Expression> depflow::preWatchedExpressions(const Function &F) {
  return collectExpressions(F);
}
