//===- verify/PassRunner.cpp - Named passes with checked entry ------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "verify/PassRunner.h"

#include "core/DepFlowGraph.h"
#include "dataflow/Anticipatability.h"
#include "dataflow/ConstantPropagation.h"
#include "dataflow/PRE.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Transforms.h"
#include "ir/Verifier.h"
#include "ssa/SSA.h"

using namespace depflow;

const std::vector<PassId> &depflow::allPasses() {
  static const std::vector<PassId> Passes = {
      PassId::Separate, PassId::ConstProp, PassId::ConstPropCFG,
      PassId::PRE,      PassId::PREBusy,   PassId::SSA,
      PassId::SSADfg,
  };
  return Passes;
}

const char *depflow::passName(PassId P) {
  switch (P) {
  case PassId::Separate:
    return "separate";
  case PassId::ConstProp:
    return "constprop";
  case PassId::ConstPropCFG:
    return "constprop-cfg";
  case PassId::PRE:
    return "pre";
  case PassId::PREBusy:
    return "pre-busy";
  case PassId::SSA:
    return "ssa";
  case PassId::SSADfg:
    return "ssa-dfg";
  }
  return "<unknown>";
}

std::optional<PassId> depflow::passByName(std::string_view Name) {
  for (PassId P : allPasses())
    if (Name == passName(P))
      return P;
  return std::nullopt;
}

bool depflow::passProducesSSA(PassId P) {
  return P == PassId::SSA || P == PassId::SSADfg;
}

namespace {

bool containsPhis(const Function &F) {
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      if (isa<PhiInst>(I.get()))
        return true;
  return false;
}

} // namespace

Status depflow::runPass(Function &F, PassId P, const PassOptions &Opts) {
  // Preconditions: every pass needs a verified CFG, and everything except
  // plain canonicalization needs phi-free input (the DFG and the dataflow
  // analyses are defined over the base IR; SSA construction would place
  // second-generation phis).
  {
    Status Pre = Status::fromMessages(verifyFunction(F));
    if (!Pre.ok()) {
      Status S = Status::error(std::string("pass --") + passName(P) +
                               ": input does not verify");
      S.append(Pre);
      return S;
    }
    if (containsPhis(F))
      return Status::error(std::string("pass --") + passName(P) +
                           ": input already contains phis (run on base IR)");
  }

  switch (P) {
  case PassId::Separate:
    separateComputation(F);
    break;
  case PassId::ConstProp: {
    DepFlowGraph G = DepFlowGraph::build(F);
    ConstPropResult CP = dfgConstantPropagation(F, G, Opts.Predicates);
    applyConstantsAndDCE(F, CP);
    break;
  }
  case PassId::ConstPropCFG: {
    ConstPropResult CP = cfgConstantPropagation(F, Opts.Predicates);
    applyConstantsAndDCE(F, CP);
    break;
  }
  case PassId::PRE:
  case PassId::PREBusy: {
    splitCriticalEdges(F);
    for (const Expression &Ex : collectExpressions(F)) {
      CFGEdges E(F);
      DepFlowGraph G = DepFlowGraph::build(F, E);
      std::vector<bool> Ant = dfgExpressionAnt(F, E, G, Ex);
      PREDecisions D = P == PassId::PREBusy ? busyCodeMotion(F, E, Ex, Ant)
                                            : morelRenvoise(F, E, Ex, Ant);
      applyPRE(F, Ex, D);
    }
    break;
  }
  case PassId::SSA: {
    PhiPlacement Placement = cytronPhiPlacement(F, /*Pruned=*/true);
    applySSA(F, Placement);
    break;
  }
  case PassId::SSADfg: {
    DepFlowGraph G = DepFlowGraph::build(F);
    PhiPlacement Placement = dfgPhiPlacement(F, G);
    applySSA(F, Placement);
    break;
  }
  }

  Status Post = Status::fromMessages(verifyFunction(F));
  if (!Post.ok()) {
    Status S = Status::error(std::string("pass --") + passName(P) +
                             ": output does not verify (miscompile)");
    S.append(Post);
    S.addError("offending output:\n" + printFunction(F));
    return S;
  }
  return Status::success();
}

Status depflow::cloneFunction(const Function &F,
                              std::unique_ptr<Function> &Out) {
  std::string Text = printFunction(F);
  ParseResult R = parseFunction(Text);
  if (!R.ok())
    return Status::error("print->parse round-trip failed: " + R.Error +
                         "\nprinted text:\n" + Text);
  Out = std::move(R.Fn);
  return Status::success();
}

std::vector<Expression> depflow::preWatchedExpressions(const Function &F) {
  return collectExpressions(F);
}
