//===- verify/PassVerifier.h - Post-pass invariant checkers -----*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mechanical checks of the paper's structural theorems, run after a pass
/// (or by the fuzzer on every generated program) to catch miscompiles:
///
///  * `verifySSAForm` — single static definition per variable, definitions
///    dominate uses (phi uses checked at the incoming edge), and pruned
///    placement: no phi whose value never reaches a non-phi use.
///  * `verifyDFGWellFormed` — Theorem 1 / Definition 6 end to end: for
///    every use, the definitions with a dependence path to it are exactly
///    the classic reaching definitions; switch/merge nodes sit only at
///    branch/join blocks with in-range ports; every node reaches a use
///    (the dead-edge-removal invariant); the per-CFG-edge dependence map
///    is consistent with the node table.
///  * `crossCheckCycleEquivalence` — the O(E) bracket-list result equals
///    the naive O(E^2·(N+E)) Definition 7 evaluation on the augmented CFG
///    (validates Claims 1-2 on this exact input).
///  * `crossCheckControlDependence` — the factored CDG agrees edge-by-edge
///    with the postdominator-based FOW baseline.
///
/// All checkers return a Status whose diagnostics are self-contained (they
/// embed the offending program text), and never crash on verified input.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_VERIFY_PASSVERIFIER_H
#define DEPFLOW_VERIFY_PASSVERIFIER_H

#include "ir/Function.h"
#include "support/Error.h"

namespace depflow {

/// Knobs for verifyPassInvariants.
struct VerifyOptions {
  /// Require SSA form (run after an SSA construction pass).
  bool ExpectSSA = false;
  /// Cross-check cycle equivalence and control dependence against the
  /// naive references. Quadratic-plus; gated by MaxCrossCheckEdges.
  bool CrossCheckStructure = true;
  /// Check DFG well-formedness (skipped automatically when F has phis,
  /// since the DFG is defined over phi-free IR).
  bool CheckDFG = true;
  /// Skip the brute-force references above this many CFG edges.
  unsigned MaxCrossCheckEdges = 600;
};

/// SSA invariants: at most one defining instruction per variable, defs
/// dominate every use, and every phi feeds (transitively) a non-phi use.
/// Requires \p F to pass verifyFunction.
Status verifySSAForm(Function &F);

/// Theorem 1 checks on a freshly built DFG of \p F (phi-free input only;
/// returns an error status if \p F contains phis).
Status verifyDFGWellFormed(Function &F);

/// Fast cycle equivalence vs. Definition 7 brute force on the augmented
/// CFG (including the virtual end->start edge's class).
Status crossCheckCycleEquivalence(Function &F);

/// Factored CDG (cycle-equivalence classes) vs. the per-edge FOW baseline.
Status crossCheckControlDependence(Function &F);

/// Composite: base IR verifier plus the checks selected by \p Opts. This is
/// what depflow-opt's --verify-each and the fuzzer run between passes.
Status verifyPassInvariants(Function &F, const VerifyOptions &Opts = {});

} // namespace depflow

#endif // DEPFLOW_VERIFY_PASSVERIFIER_H
