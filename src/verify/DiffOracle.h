//===- verify/DiffOracle.h - Differential semantic oracle -------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The semantic oracle behind depflow-fuzz: run the reference interpreter
/// on the original and the transformed function over randomized input
/// vectors and compare observable behaviour — outputs, halting, and traps.
/// Optionally also enforces the paper's Section 5.2 guarantee that PRE
/// never adds a dynamic evaluation of the optimized expression to any
/// executed path.
///
/// Input vectors are drawn from a small biased range so branches flip,
/// loops terminate early, and division by zero is exercised; the same
/// vector feeds both sides (parameters first, then read()).
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_VERIFY_DIFFORACLE_H
#define DEPFLOW_VERIFY_DIFFORACLE_H

#include "ir/Expression.h"
#include "ir/Function.h"
#include "support/Error.h"
#include "support/RNG.h"

#include <memory>
#include <vector>

namespace depflow {

struct OracleOptions {
  /// Number of random input vectors to compare per pair.
  unsigned Runs = 8;
  /// Length of each input vector (parameters + read()s).
  unsigned InputLen = 10;
  /// Inclusive range inputs are drawn from. Small and straddling zero so
  /// conditions flip and x/0 and x==c corner cases occur.
  std::int64_t InputMin = -4;
  std::int64_t InputMax = 9;
  /// Step budget for the original; the transformed side gets a multiple
  /// (transforms may add blocks/phis, so step counts differ legally).
  std::uint64_t MaxSteps = 50000;
  /// When non-null, also check the transformed side never evaluates any of
  /// these expressions more often than the original on the same input
  /// (the PRE "never adds a computation to any path" claim). Expressions
  /// are in the *transformed* function's variable numbering; the oracle
  /// translates them onto the original by variable name, since clones made
  /// by print->parse may number variables differently.
  const std::vector<Expression> *NoNewComputationsOf = nullptr;
};

/// Compares \p Original and \p Transformed over randomized executions.
/// Diagnostics name the inputs that witnessed the divergence, so a failure
/// is reproducible without the RNG state.
Status diffExecutions(const Function &Original, const Function &Transformed,
                      RNG &Rand, const OracleOptions &Opts = {});

/// One comparison on a fixed input vector (the reducer re-checks candidate
/// programs with the witness inputs from a failed diffExecutions).
Status diffOneExecution(const Function &Original, const Function &Transformed,
                        const std::vector<std::int64_t> &Inputs,
                        const OracleOptions &Opts = {});

/// Clones \p F by printing and re-parsing it (the IR round-trips by
/// construction; a failure to do so is itself a bug and yields an error).
/// Variable *ids* may be renumbered; names and semantics are preserved.
/// This is how the fuzzer gets a pristine original to diff against.
Status cloneFunction(const Function &F, std::unique_ptr<Function> &Out);

/// The binary expressions of \p F eligible for PRE — what the oracle
/// watches for the "never adds a computation" guarantee
/// (OracleOptions::NoNewComputationsOf).
std::vector<Expression> preWatchedExpressions(const Function &F);

} // namespace depflow

#endif // DEPFLOW_VERIFY_DIFFORACLE_H
