//===- ssa/SSA.cpp - SSA construction (Cytron and DFG-derived) ------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "ssa/SSA.h"

#include "dataflow/Liveness.h"
#include "graph/Dominators.h"
#include "support/Worklist.h"

#include <unordered_map>

using namespace depflow;

PhiPlacement depflow::cytronPhiPlacement(Function &F, bool Pruned) {
  F.recomputePreds();
  DomTree DT(cfgDigraph(F), F.entry()->id());
  return cytronPhiPlacement(F, Pruned, DT);
}

PhiPlacement depflow::cytronPhiPlacement(Function &F, bool Pruned,
                                         const DomTree &DT) {
  F.recomputePreds();
  Digraph G = cfgDigraph(F);
  auto DF = dominanceFrontiers(G, DT);
  Liveness Live = Pruned ? computeLiveness(F) : Liveness{};

  PhiPlacement Placement(F.numBlocks());
  for (VarId V = 0; V != F.numVars(); ++V) {
    // Definition blocks (the entry is an implicit def site of every var).
    std::vector<unsigned> DefBlocks{F.entry()->id()};
    for (const auto &BB : F.blocks())
      for (const auto &I : BB->instructions())
        if (const auto *D = dyn_cast<DefInst>(I.get()))
          if (D->def() == V) {
            DefBlocks.push_back(BB->id());
            break;
          }

    // Iterated dominance frontier via the classic worklist.
    Worklist WL(F.numBlocks());
    BitVector InIDF(F.numBlocks());
    for (unsigned B : DefBlocks)
      WL.push(B);
    while (!WL.empty()) {
      unsigned B = WL.pop();
      for (unsigned W : DF[B]) {
        if (InIDF.test(W))
          continue;
        InIDF.set(W);
        WL.push(W);
      }
    }
    for (int B = InIDF.findFirst(); B >= 0; B = InIDF.findNext(unsigned(B))) {
      if (Pruned && !Live.LiveIn[unsigned(B)].test(V))
        continue;
      Placement[unsigned(B)].insert(V);
    }
  }
  return Placement;
}

PhiPlacement depflow::dfgPhiPlacement(Function &F, const DepFlowGraph &G) {
  // Trivial-φ collapse in the Aycock-Horspool style, pessimistic and
  // order-independent: every merge starts as a φ; a merge whose inputs all
  // resolve (through transparent switch/use nodes and already-collapsed
  // merges) to one node other than itself is trivial and collapses onto
  // it. Each round collapses at least one merge, so this terminates.
  std::vector<int> Parent(G.numNodes(), -1);
  std::vector<unsigned> Merges;
  for (unsigned N = 0; N != G.numNodes(); ++N) {
    const auto &Node = G.node(N);
    switch (Node.Kind) {
    case DepFlowGraph::NodeKind::Switch:
    case DepFlowGraph::NodeKind::Use:
      // Transparent: forward to the (single) feeding source.
      if (!G.inEdges(N).empty())
        Parent[N] = int(G.edge(G.inEdges(N)[0]).Src);
      break;
    case DepFlowGraph::NodeKind::Merge:
      Merges.push_back(N);
      break;
    default:
      break;
    }
  }

  // Resolve with path compression.
  auto Resolve = [&](unsigned N) {
    unsigned Cur = N;
    while (Parent[Cur] >= 0)
      Cur = unsigned(Parent[Cur]);
    while (Parent[N] >= 0) {
      int Next = Parent[N];
      Parent[N] = int(Cur);
      N = unsigned(Next);
    }
    return Cur;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned M : Merges) {
      if (Parent[M] >= 0)
        continue; // Already collapsed.
      int Single = -1;
      bool Trivial = true;
      for (unsigned InId : G.inEdges(M)) {
        unsigned O = Resolve(G.edge(InId).Src);
        if (O == M)
          continue; // Self loop-back contributes nothing.
        if (Single < 0) {
          Single = int(O);
        } else if (Single != int(O)) {
          Trivial = false;
          break;
        }
      }
      if (Trivial && Single >= 0) {
        Parent[M] = Single;
        Changed = true;
      }
    }
  }

  PhiPlacement Placement(F.numBlocks());
  for (unsigned M : Merges) {
    const auto &Node = G.node(M);
    if (!G.isControl(Node.Var) && Parent[M] < 0)
      Placement[Node.Block->id()].insert(Node.Var);
  }
  return Placement;
}

std::vector<VarId> depflow::applySSA(Function &F,
                                     const PhiPlacement &Placement) {
  F.recomputePreds();
  DomTree DT(cfgDigraph(F), F.entry()->id());
  return applySSA(F, Placement, DT);
}

std::vector<VarId> depflow::applySSA(Function &F,
                                     const PhiPlacement &Placement,
                                     const DomTree &DT) {
  F.recomputePreds();

  // Insert empty φs, remembering each one's original variable.
  std::unordered_map<PhiInst *, VarId> PhiOrig;
  for (unsigned B = 0; B != F.numBlocks(); ++B) {
    for (VarId V : Placement[B]) {
      PhiInst *Phi = F.block(B)->appendPhi(V);
      PhiOrig[Phi] = V;
    }
  }

  unsigned OriginalVars = F.numVars();
  std::vector<VarId> OrigOf(OriginalVars);
  for (VarId V = 0; V != OriginalVars; ++V)
    OrigOf[V] = V;

  // Renaming stacks: the original name itself is the entry definition.
  std::vector<std::vector<VarId>> Stack(OriginalVars);
  for (VarId V = 0; V != OriginalVars; ++V)
    Stack[V].push_back(V);

  auto FreshName = [&](VarId V) {
    VarId NewV = F.makeFreshVar(F.varName(V) + "." +
                                std::to_string(Stack[V].size()));
    OrigOf.resize(F.numVars(), 0);
    OrigOf[NewV] = V;
    return NewV;
  };

  // Dominator-tree preorder walk with explicit push counts for unwinding.
  struct Frame {
    unsigned Block;
    unsigned ChildCursor = 0;
    std::vector<std::pair<VarId, VarId>> Pushed; // (orig, new)
  };
  std::vector<Frame> Stk;
  Stk.push_back({F.entry()->id()});

  auto ProcessBlock = [&](Frame &Fr) {
    BasicBlock *BB = F.block(Fr.Block);
    for (const auto &IPtr : BB->instructions()) {
      Instruction *I = IPtr.get();
      if (auto *Phi = dyn_cast<PhiInst>(I)) {
        VarId V = PhiOrig.count(Phi) ? PhiOrig[Phi] : Phi->def();
        VarId NewV = FreshName(V);
        Phi->setDef(NewV);
        Stack[V].push_back(NewV);
        Fr.Pushed.push_back({V, NewV});
        continue;
      }
      for (unsigned Idx = 0; Idx != I->numOperands(); ++Idx) {
        const Operand &Op = I->operand(Idx);
        if (Op.isVar())
          I->setOperand(Idx, Operand::var(Stack[OrigOf[Op.var()]].back()));
      }
      if (auto *D = dyn_cast<DefInst>(I)) {
        VarId V = D->def();
        VarId NewV = FreshName(V);
        D->setDef(NewV);
        Stack[V].push_back(NewV);
        Fr.Pushed.push_back({V, NewV});
      }
    }
    // Feed φs in CFG successors.
    for (BasicBlock *S : BB->successors()) {
      for (const auto &IPtr : S->instructions()) {
        auto *Phi = dyn_cast<PhiInst>(IPtr.get());
        if (!Phi)
          break;
        VarId V = PhiOrig.count(Phi) ? PhiOrig[Phi] : Phi->def();
        Phi->addIncoming(BB, Operand::var(Stack[V].back()));
      }
    }
  };

  ProcessBlock(Stk.back());
  while (!Stk.empty()) {
    Frame &Fr = Stk.back();
    const auto &Children = DT.children(Fr.Block);
    if (Fr.ChildCursor < Children.size()) {
      unsigned Child = Children[Fr.ChildCursor++];
      Stk.push_back({Child});
      ProcessBlock(Stk.back());
    } else {
      for (auto It = Fr.Pushed.rbegin(); It != Fr.Pushed.rend(); ++It)
        Stack[It->first].pop_back();
      Stk.pop_back();
    }
  }
  F.recomputePreds();
  return OrigOf;
}

bool depflow::isSSAForm(const Function &F) {
  std::vector<unsigned> DefCount(F.numVars(), 0);
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      if (const auto *D = dyn_cast<DefInst>(I.get()))
        if (++DefCount[D->def()] > 1)
          return false;
  return true;
}
