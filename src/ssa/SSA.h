//===- ssa/SSA.h - SSA construction (Cytron and DFG-derived) ----*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two ways to reach SSA form:
///
///  * `cytronPhiPlacement` — the baseline: iterated dominance frontiers of
///    each variable's definition blocks [Cytron et al. 1989/1991], with
///    optional pruning by liveness.
///  * `dfgPhiPlacement` — the paper's O(EV) route (Section 3.3): take the
///    DFG, elide switches, and convert the surviving merges to φ-functions.
///    A collapse pass removes merges whose inputs all carry the same
///    definition (the trivial φs that base-level joins inside def-free
///    regions would otherwise produce).
///
/// `applySSA` then inserts φs and renames via the standard dominator-tree
/// walk. Variables start at 0 at entry, so the original variable name keeps
/// serving as the entry definition and uses before any def stay correct.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_SSA_SSA_H
#define DEPFLOW_SSA_SSA_H

#include "core/DepFlowGraph.h"
#include "graph/Dominators.h"
#include "ir/Function.h"

#include <set>
#include <vector>

namespace depflow {

/// Per block id: the variables that need a φ at the block's head.
using PhiPlacement = std::vector<std::set<VarId>>;

/// IDF-based placement. With \p Pruned, φs are only placed where the
/// variable is live-in.
PhiPlacement cytronPhiPlacement(Function &F, bool Pruned);

/// Same, reusing a caller-provided dominator tree of F's CFG (the analysis
/// manager's cache) instead of rebuilding one.
PhiPlacement cytronPhiPlacement(Function &F, bool Pruned, const DomTree &DT);

/// DFG-derived placement: surviving non-trivial merges of data variables.
/// \p G must be the DFG of \p F.
PhiPlacement dfgPhiPlacement(Function &F, const DepFlowGraph &G);

/// Inserts φs per \p Placement and renames the function into SSA form.
/// Returns, for every variable id of the renamed function, the original
/// variable it stems from (identity for the pre-existing ids).
std::vector<VarId> applySSA(Function &F, const PhiPlacement &Placement);

/// Same, reusing a caller-provided dominator tree. φ insertion adds
/// instructions only, so a tree computed before the call stays valid for
/// the renaming walk.
std::vector<VarId> applySSA(Function &F, const PhiPlacement &Placement,
                            const DomTree &DT);

/// True if no variable has more than one defining instruction.
bool isSSAForm(const Function &F);

} // namespace depflow

#endif // DEPFLOW_SSA_SSA_H
