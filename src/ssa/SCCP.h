//===- ssa/SCCP.h - Sparse conditional constant propagation -----*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wegman-Zadeck sparse conditional constant propagation over SSA form —
/// the SSA-world comparison point the paper cites ([WZ85, WZ91]). Finds the
/// same all-paths and possible-paths constants as the CFG and DFG
/// algorithms of Section 4.
///
/// Requires: \p F is in SSA form (each variable has at most one defining
/// instruction); \p OrigOf maps renamed variables to original ones (used
/// only to decide parameter-ness of entry values).
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_SSA_SCCP_H
#define DEPFLOW_SSA_SCCP_H

#include "dataflow/ConstantPropagation.h"
#include "ir/Function.h"

#include <vector>

namespace depflow {

/// Runs SCCP on the SSA-form function \p F. The result reports, as usual,
/// one lattice value per operand of every instruction (φs included).
ConstPropResult sccp(Function &F, const std::vector<VarId> &OrigOf);

} // namespace depflow

#endif // DEPFLOW_SSA_SCCP_H
