//===- ssa/SCCP.cpp - Sparse conditional constant propagation -------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "ssa/SCCP.h"

#include "ir/CFGEdges.h"
#include "ssa/SSA.h"
#include "support/Worklist.h"

#include <unordered_map>

using namespace depflow;

ConstPropResult depflow::sccp(Function &F, const std::vector<VarId> &OrigOf) {
  assert(isSSAForm(F) && "SCCP requires SSA form");
  F.recomputePreds();
  CFGEdges E(F);
  unsigned NV = F.numVars();

  std::vector<ConstVal> Val(NV);
  std::vector<bool> EdgeExec(E.size(), false);
  std::vector<bool> BlockExec(F.numBlocks(), false);

  // Entry values: original variables that are never (re)defined keep their
  // entry value — 0, or ⊤ for parameters. Renamed variables start ⊥ and
  // climb as their unique definition is evaluated.
  std::vector<bool> HasDef(NV, false);
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      if (const auto *D = dyn_cast<DefInst>(I.get()))
        HasDef[D->def()] = true;
  for (VarId V = 0; V != NV; ++V) {
    if (HasDef[V])
      continue;
    bool IsParam = false;
    for (VarId P : F.params())
      IsParam |= (OrigOf[V] == P);
    Val[V] = IsParam ? ConstVal::top() : ConstVal::cst(0);
  }

  // var -> instructions that read it (SSA use lists).
  std::unordered_map<VarId, std::vector<Instruction *>> UsersOf;
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions())
      for (const Operand &Op : I->operands())
        if (Op.isVar())
          UsersOf[Op.var()].push_back(I.get());

  std::vector<Instruction *> InstWL;
  std::vector<unsigned> EdgeWL;

  auto OperandVal = [&](const Operand &Op) {
    return Op.isImm() ? ConstVal::cst(Op.imm()) : Val[Op.var()];
  };

  auto SetVal = [&](VarId V, ConstVal New) {
    if (Val[V] == New)
      return;
    Val[V] = New;
    for (Instruction *U : UsersOf[V])
      InstWL.push_back(U);
  };

  auto VisitInst = [&](Instruction *I) {
    BasicBlock *BB = I->parent();
    if (!BlockExec[BB->id()])
      return;
    if (auto *Phi = dyn_cast<PhiInst>(I)) {
      ConstVal New;
      for (unsigned K = 0; K != Phi->numIncoming(); ++K) {
        // Find the CFG edge from the incoming block; include only if it is
        // executable.
        BasicBlock *Pred = Phi->incomingBlock(K);
        bool Exec = false;
        for (unsigned EId : E.inEdges(BB))
          if (E.edge(EId).From == Pred)
            Exec |= EdgeExec[EId];
        if (Exec)
          New = New.join(OperandVal(Phi->incomingValue(K)));
      }
      SetVal(Phi->def(), New);
      return;
    }
    if (auto *D = dyn_cast<DefInst>(I)) {
      SetVal(D->def(), evalDefinition(*D, OperandVal));
      return;
    }
    if (auto *Br = dyn_cast<CondBrInst>(I)) {
      ConstVal Cond = OperandVal(Br->cond());
      if (Cond.mayBeTrue())
        EdgeWL.push_back(E.outEdge(BB, 0));
      if (Cond.mayBeFalse())
        EdgeWL.push_back(E.outEdge(BB, 1));
      return;
    }
    if (isa<JumpInst>(I))
      EdgeWL.push_back(E.outEdge(BB, 0));
  };

  auto VisitBlock = [&](BasicBlock *BB) {
    for (const auto &I : BB->instructions())
      VisitInst(I.get());
  };

  BlockExec[F.entry()->id()] = true;
  VisitBlock(F.entry());
  while (!InstWL.empty() || !EdgeWL.empty()) {
    if (!EdgeWL.empty()) {
      unsigned EId = EdgeWL.back();
      EdgeWL.pop_back();
      if (EdgeExec[EId])
        continue;
      EdgeExec[EId] = true;
      BasicBlock *To = E.edge(EId).To;
      if (!BlockExec[To->id()]) {
        BlockExec[To->id()] = true;
        VisitBlock(To);
      } else {
        // Re-evaluate φs: a new incoming edge became executable.
        for (const auto &I : To->instructions()) {
          if (!isa<PhiInst>(I.get()))
            break;
          VisitInst(I.get());
        }
      }
      continue;
    }
    Instruction *I = InstWL.back();
    InstWL.pop_back();
    VisitInst(I);
  }

  ConstPropResult R;
  R.ExecutableBlock = BlockExec;
  R.allocate(F);
  std::uint32_t Row = 0;
  for (const auto &BB : F.blocks()) {
    bool Exec = BlockExec[BB->id()];
    for (const auto &IPtr : BB->instructions()) {
      const Instruction *I = IPtr.get();
      ConstVal *Vals = R.row(Row++);
      if (!Exec)
        continue; // Rows start out ⊥-filled.
      for (unsigned Idx = 0; Idx != I->numOperands(); ++Idx)
        Vals[Idx] = OperandVal(I->operand(Idx));
    }
  }
  return R;
}
