//===- support/StringInterner.h - String interning --------------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps strings (variable names) to small dense integer ids and back.
/// Variable ids index the per-variable structures of the dependence flow
/// graph, so they must be dense and stable across a function.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_SUPPORT_STRINGINTERNER_H
#define DEPFLOW_SUPPORT_STRINGINTERNER_H

#include <cassert>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace depflow {

class StringInterner {
  std::unordered_map<std::string, unsigned> IdOf;
  std::vector<std::string> Names;

public:
  /// Interns \p Name, returning its dense id (allocating one if new).
  unsigned intern(std::string_view Name) {
    auto It = IdOf.find(std::string(Name));
    if (It != IdOf.end())
      return It->second;
    unsigned Id = unsigned(Names.size());
    Names.emplace_back(Name);
    IdOf.emplace(Names.back(), Id);
    return Id;
  }

  /// Returns the id of \p Name, or -1 if it was never interned.
  int lookup(std::string_view Name) const {
    auto It = IdOf.find(std::string(Name));
    return It == IdOf.end() ? -1 : int(It->second);
  }

  const std::string &name(unsigned Id) const {
    assert(Id < Names.size() && "unknown interned id");
    return Names[Id];
  }

  unsigned size() const { return unsigned(Names.size()); }
};

} // namespace depflow

#endif // DEPFLOW_SUPPORT_STRINGINTERNER_H
