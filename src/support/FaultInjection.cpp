//===- support/FaultInjection.cpp - Deterministic fault points ------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include <atomic>
#include <cstdlib>
#include <thread>

using namespace depflow;

namespace {

/// The single armed fault point. The spec itself is written only while no
/// workers run (configureFaultInjection's contract); the counters are the
/// only fields touched concurrently.
struct ArmedState {
  FaultSpec Spec;
  std::atomic<std::uint64_t> Occurrences{0};
  std::atomic<bool> Fired{false};
};

ArmedState Armed;
std::atomic<bool> ArmedFlag{false};

thread_local detail::FaultTaskState *CurrentTask = nullptr;

/// Counts one matching occurrence; true exactly when it is the Nth. The
/// fetch_add makes the "exactly once" guarantee hold under any number of
/// racing workers: one thread observes the Nth count, every other thread
/// observes a different one.
bool fireOnMatch() {
  std::uint64_t N =
      Armed.Occurrences.fetch_add(1, std::memory_order_relaxed) + 1;
  if (N != Armed.Spec.Nth)
    return false;
  Armed.Fired.store(true, std::memory_order_relaxed);
  return true;
}

bool armedKindIs(FaultKind K) {
  return ArmedFlag.load(std::memory_order_relaxed) && Armed.Spec.Kind == K;
}

bool parseUint(const std::string &Text, std::uint64_t &Out) {
  if (Text.empty())
    return false;
  char *End = nullptr;
  Out = std::strtoull(Text.c_str(), &End, 10);
  return End && *End == '\0';
}

} // namespace

//===----------------------------------------------------------------------===//
// Spec parsing
//===----------------------------------------------------------------------===//

std::string FaultSpec::str() const {
  std::string S;
  switch (Kind) {
  case FaultKind::None:
    return "";
  case FaultKind::AllocFail:
    S = "alloc-fail";
    break;
  case FaultKind::PassFail:
    S = "pass-fail:" + Arg;
    break;
  case FaultKind::AnalysisFail:
    S = "analysis-fail:" + Arg;
    break;
  case FaultKind::ParseTruncate:
    S = "parse-truncate";
    break;
  case FaultKind::SlowPass:
    S = "slow-pass:" + std::to_string(Millis);
    break;
  }
  if (Nth != 1)
    S += "@" + std::to_string(Nth);
  return S;
}

std::vector<std::string> depflow::faultPointNames() {
  return {"alloc-fail", "pass-fail:<pass>", "analysis-fail:<analysis>",
          "parse-truncate", "slow-pass:<ms>"};
}

Status depflow::parseFaultSpec(std::string_view Text, FaultSpec &Out) {
  std::string T(Text);
  auto Fail = [&](const std::string &Why) {
    std::string Known;
    for (const std::string &N : faultPointNames())
      Known += (Known.empty() ? "" : ", ") + N;
    return Status::error("bad fault spec '" + std::string(Text) + "': " +
                         Why + " (known points: " + Known +
                         "; each takes an optional @N occurrence)");
  };

  FaultSpec S;
  auto At = T.rfind('@');
  if (At != std::string::npos) {
    if (!parseUint(T.substr(At + 1), S.Nth) || S.Nth == 0)
      return Fail("the @N occurrence must be a positive integer");
    T = T.substr(0, At);
  }

  auto Colon = T.find(':');
  std::string Point = Colon == std::string::npos ? T : T.substr(0, Colon);
  std::string Arg = Colon == std::string::npos ? "" : T.substr(Colon + 1);

  if (Point == "alloc-fail") {
    if (!Arg.empty())
      return Fail("alloc-fail takes no argument");
    S.Kind = FaultKind::AllocFail;
  } else if (Point == "pass-fail") {
    if (Arg.empty())
      return Fail("pass-fail needs a pass name");
    S.Kind = FaultKind::PassFail;
    S.Arg = Arg;
  } else if (Point == "analysis-fail") {
    if (Arg.empty())
      return Fail("analysis-fail needs an analysis name");
    S.Kind = FaultKind::AnalysisFail;
    S.Arg = Arg;
  } else if (Point == "parse-truncate") {
    if (!Arg.empty())
      return Fail("parse-truncate takes no argument");
    S.Kind = FaultKind::ParseTruncate;
  } else if (Point == "slow-pass") {
    if (!parseUint(Arg, S.Millis))
      return Fail("slow-pass needs a millisecond count");
    S.Kind = FaultKind::SlowPass;
  } else {
    return Fail("unknown point '" + Point + "'");
  }
  Out = S;
  return Status::success();
}

//===----------------------------------------------------------------------===//
// Arming
//===----------------------------------------------------------------------===//

Status depflow::configureFaultInjection(std::string_view SpecText) {
  if (SpecText.empty()) {
    clearFaultInjection();
    return Status::success();
  }
  FaultSpec S;
  Status P = parseFaultSpec(SpecText, S);
  if (!P.ok())
    return P;
  ArmedFlag.store(false, std::memory_order_relaxed);
  Armed.Spec = S;
  Armed.Occurrences.store(0, std::memory_order_relaxed);
  Armed.Fired.store(false, std::memory_order_relaxed);
  ArmedFlag.store(true, std::memory_order_release);
  return Status::success();
}

void depflow::clearFaultInjection() {
  ArmedFlag.store(false, std::memory_order_relaxed);
  Armed.Spec = FaultSpec();
  Armed.Occurrences.store(0, std::memory_order_relaxed);
  Armed.Fired.store(false, std::memory_order_relaxed);
}

bool depflow::faultInjectionArmed() {
  return ArmedFlag.load(std::memory_order_relaxed);
}

std::string depflow::armedFaultSpec() {
  return faultInjectionArmed() ? Armed.Spec.str() : std::string();
}

bool depflow::faultPointFired() {
  return Armed.Fired.load(std::memory_order_relaxed);
}

std::uint64_t depflow::faultOccurrenceCount() {
  return Armed.Occurrences.load(std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Task scope
//===----------------------------------------------------------------------===//

TaskScope::TaskScope(const char *FunctionName, std::uint64_t StartBytes,
                     std::uint64_t MaxTaskBytes, std::uint64_t MaxPassMillis) {
  State.Function = FunctionName;
  State.StartBytes = StartBytes;
  State.MaxTaskBytes = MaxTaskBytes;
  State.MaxPassMillis = MaxPassMillis;
  State.Prev = CurrentTask;
  CurrentTask = &State;
}

TaskScope::~TaskScope() { CurrentTask = State.Prev; }

const char *depflow::currentTaskFunction() noexcept {
  detail::FaultTaskState *T = CurrentTask;
  return T ? T->Function : "";
}

void depflow::taskPassBegin(const char *PassName) {
  if (detail::FaultTaskState *T = CurrentTask) {
    T->Pass = PassName;
    T->PassStart = std::chrono::steady_clock::now();
  }
}

static std::uint64_t elapsedPassMillis(const detail::FaultTaskState &T) {
  return std::uint64_t(std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - T.PassStart)
                           .count());
}

Status depflow::taskPassDeadlineCheck() {
  detail::FaultTaskState *T = CurrentTask;
  if (!T || !T->MaxPassMillis)
    return Status::success();
  std::uint64_t Ms = elapsedPassMillis(*T);
  if (Ms <= T->MaxPassMillis)
    return Status::success();
  return Status::error("pass --" + std::string(T->Pass) +
                       " exceeded --max-pass-millis=" +
                       std::to_string(T->MaxPassMillis) + " (" +
                       std::to_string(Ms) + " ms elapsed)");
}

//===----------------------------------------------------------------------===//
// Check sites
//===----------------------------------------------------------------------===//

bool depflow::faultShouldFailAlloc(std::uint64_t ThreadBytesSoFar,
                                   std::size_t Size) noexcept {
  detail::FaultTaskState *T = CurrentTask;
  if (!T)
    return false;
  // Byte budget: exact, enforced at the real crossing allocation. One-shot
  // per task — after the breach, cleanup and diagnostics must allocate.
  if (T->MaxTaskBytes && !T->ByteBudgetBreached &&
      ThreadBytesSoFar - T->StartBytes + Size > T->MaxTaskBytes) {
    T->ByteBudgetBreached = true;
    return true;
  }
  if (armedKindIs(FaultKind::AllocFail) && fireOnMatch()) {
    T->AllocFaultFired = true;
    return true;
  }
  return false;
}

Status depflow::faultPassCheckpoint(const char *PassName) {
  if (!ArmedFlag.load(std::memory_order_relaxed))
    return Status::success();
  switch (Armed.Spec.Kind) {
  case FaultKind::PassFail:
    if (Armed.Spec.Arg == PassName && fireOnMatch())
      return Status::error("fault injected: " + Armed.Spec.str());
    break;
  case FaultKind::SlowPass:
    if (fireOnMatch())
      std::this_thread::sleep_for(
          std::chrono::milliseconds(Armed.Spec.Millis));
    break;
  default:
    break;
  }
  return Status::success();
}

void depflow::faultAnalysisCheckpoint(const char *AnalysisName) {
  if (armedKindIs(FaultKind::AnalysisFail) &&
      Armed.Spec.Arg == AnalysisName && fireOnMatch())
    throw FaultInjectedError("fault injected: " + Armed.Spec.str() +
                             " (computing analysis '" +
                             std::string(AnalysisName) + "')");
  // Cooperative deadline: a pass that burns its budget inside analyses is
  // caught before the next computation starts, not only at the pass
  // boundary.
  detail::FaultTaskState *T = CurrentTask;
  if (T && T->MaxPassMillis) {
    std::uint64_t Ms = elapsedPassMillis(*T);
    if (Ms > T->MaxPassMillis)
      throw TaskDeadlineError(
          "pass --" + std::string(T->Pass) +
          " exceeded --max-pass-millis=" + std::to_string(T->MaxPassMillis) +
          " (" + std::to_string(Ms) + " ms elapsed at analysis '" +
          std::string(AnalysisName) + "')");
  }
}

std::string depflow::faultTruncateSource(std::string_view Source) {
  if (armedKindIs(FaultKind::ParseTruncate) && fireOnMatch())
    return std::string(Source.substr(0, Source.size() / 2));
  return std::string(Source);
}
