//===- support/Statistic.cpp - Global statistics counters -----------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "support/Statistic.h"

#include <algorithm>
#include <cstring>
#include <mutex>

using namespace depflow;

namespace {

// The registry lock only guards the pointer vectors (registration order);
// the statistic values themselves are relaxed atomics, so snapshot reads
// may race with in-flight increments — each field is still read
// atomically, and drivers snapshot after joining their workers.
struct Registry {
  std::mutex Lock;
  std::vector<Statistic *> Stats;
  std::vector<MaxStatistic *> Maxes;
  std::vector<HistStatistic *> Hists;
};

Registry &registry() {
  static Registry R; // Meyers singleton: safe across static-init order.
  return R;
}

} // namespace

void Statistic::registerOnce() {
  if (Registered.load(std::memory_order_acquire))
    return;
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  if (!Registered.load(std::memory_order_relaxed)) {
    R.Stats.push_back(this);
    Registered.store(true, std::memory_order_release);
  }
}

void MaxStatistic::registerOnce() {
  if (Registered.load(std::memory_order_acquire))
    return;
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  if (!Registered.load(std::memory_order_relaxed)) {
    R.Maxes.push_back(this);
    Registered.store(true, std::memory_order_release);
  }
}

void HistStatistic::registerOnce() {
  if (Registered.load(std::memory_order_acquire))
    return;
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  if (!Registered.load(std::memory_order_relaxed)) {
    R.Hists.push_back(this);
    Registered.store(true, std::memory_order_release);
  }
}

std::vector<StatisticSnapshot> depflow::statisticsSnapshot() {
  Registry &R = registry();
  std::vector<StatisticSnapshot> Rows;
  {
    std::lock_guard<std::mutex> G(R.Lock);
    Rows.reserve(R.Stats.size() + R.Maxes.size() + R.Hists.size());
    for (const Statistic *S : R.Stats)
      Rows.push_back({S->group(), S->name(), S->desc(), S->value()});
    for (const MaxStatistic *S : R.Maxes) {
      StatisticSnapshot Row{S->group(), S->name(), S->desc(), S->value()};
      Row.Kind = StatKind::Max;
      Rows.push_back(std::move(Row));
    }
    for (const HistStatistic *S : R.Hists) {
      StatisticSnapshot Row{S->group(), S->name(), S->desc(), S->sum()};
      Row.Kind = StatKind::Histogram;
      Row.Count = S->count();
      Row.Max = S->max();
      Row.Buckets.resize(HistStatistic::NumBuckets);
      for (unsigned I = 0; I != HistStatistic::NumBuckets; ++I)
        Row.Buckets[I] = S->bucket(I);
      Rows.push_back(std::move(Row));
    }
  }
  std::sort(Rows.begin(), Rows.end(),
            [](const StatisticSnapshot &A, const StatisticSnapshot &B) {
              return A.Group != B.Group ? A.Group < B.Group : A.Name < B.Name;
            });
  return Rows;
}

std::uint64_t depflow::statisticValue(const char *Group, const char *Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  for (const Statistic *S : R.Stats)
    if (!std::strcmp(S->group(), Group) && !std::strcmp(S->name(), Name))
      return S->value();
  for (const MaxStatistic *S : R.Maxes)
    if (!std::strcmp(S->group(), Group) && !std::strcmp(S->name(), Name))
      return S->value();
  for (const HistStatistic *S : R.Hists)
    if (!std::strcmp(S->group(), Group) && !std::strcmp(S->name(), Name))
      return S->sum();
  return 0;
}

void depflow::printStatistics(std::FILE *Out) {
  std::vector<StatisticSnapshot> Rows = statisticsSnapshot();
  std::fprintf(Out, "===-------------------------------------------===\n");
  std::fprintf(Out, "            ... Statistics Collected ...\n");
  std::fprintf(Out, "===-------------------------------------------===\n");
  for (const StatisticSnapshot &Row : Rows) {
    std::fprintf(Out, "%8llu %-12s - %s", (unsigned long long)Row.Value,
                 Row.Group.c_str(), Row.Desc.c_str());
    if (Row.Kind == StatKind::Max)
      std::fprintf(Out, " (max)");
    else if (Row.Kind == StatKind::Histogram)
      std::fprintf(Out, " (n=%llu, max=%llu)", (unsigned long long)Row.Count,
                   (unsigned long long)Row.Max);
    std::fputc('\n', Out);
  }
}

void depflow::resetStatistics() {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  for (Statistic *S : R.Stats)
    *S = 0;
  for (MaxStatistic *S : R.Maxes)
    S->Value.store(0, std::memory_order_relaxed);
  for (HistStatistic *S : R.Hists) {
    S->Count.store(0, std::memory_order_relaxed);
    S->Sum.store(0, std::memory_order_relaxed);
    S->Max.store(0, std::memory_order_relaxed);
    for (unsigned I = 0; I != HistStatistic::NumBuckets; ++I)
      S->Buckets[I].store(0, std::memory_order_relaxed);
  }
}
