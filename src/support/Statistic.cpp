//===- support/Statistic.cpp - Global statistics counters -----------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "support/Statistic.h"

#include <algorithm>
#include <mutex>

using namespace depflow;

namespace {

struct Registry {
  std::mutex Lock;
  std::vector<Statistic *> Stats;
};

Registry &registry() {
  static Registry R; // Meyers singleton: safe across static-init order.
  return R;
}

} // namespace

void Statistic::registerOnce() {
  if (Registered.load(std::memory_order_acquire))
    return;
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  if (!Registered.load(std::memory_order_relaxed)) {
    R.Stats.push_back(this);
    Registered.store(true, std::memory_order_release);
  }
}

std::vector<StatisticSnapshot> depflow::statisticsSnapshot() {
  Registry &R = registry();
  std::vector<StatisticSnapshot> Rows;
  {
    std::lock_guard<std::mutex> G(R.Lock);
    Rows.reserve(R.Stats.size());
    for (const Statistic *S : R.Stats)
      Rows.push_back({S->group(), S->name(), S->desc(), S->value()});
  }
  std::sort(Rows.begin(), Rows.end(),
            [](const StatisticSnapshot &A, const StatisticSnapshot &B) {
              return A.Group != B.Group ? A.Group < B.Group : A.Name < B.Name;
            });
  return Rows;
}

void depflow::printStatistics(std::FILE *Out) {
  std::vector<StatisticSnapshot> Rows = statisticsSnapshot();
  std::fprintf(Out, "===-------------------------------------------===\n");
  std::fprintf(Out, "            ... Statistics Collected ...\n");
  std::fprintf(Out, "===-------------------------------------------===\n");
  for (const StatisticSnapshot &Row : Rows)
    std::fprintf(Out, "%8llu %-12s - %s\n", (unsigned long long)Row.Value,
                 Row.Group.c_str(), Row.Desc.c_str());
}

void depflow::resetStatistics() {
  Registry &R = registry();
  std::lock_guard<std::mutex> G(R.Lock);
  for (Statistic *S : R.Stats)
    *S = 0;
}
