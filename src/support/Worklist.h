//===- support/Worklist.h - Deduplicating worklist ---------------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A FIFO worklist over dense integer ids that never holds an id twice.
/// Both the CFG and DFG dataflow solvers (Sections 4 and 5 of the paper) are
/// worklist algorithms; deduplication keeps their complexity bounds honest.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_SUPPORT_WORKLIST_H
#define DEPFLOW_SUPPORT_WORKLIST_H

#include "support/Arena.h"
#include "support/BitVector.h"

#include <cstdint>
#include <deque>

namespace depflow {

class Worklist {
  std::deque<unsigned> Queue;
  BitVector InQueue;

public:
  explicit Worklist(unsigned UniverseSize) : InQueue(UniverseSize) {}

  bool empty() const { return Queue.empty(); }
  std::size_t size() const { return Queue.size(); }

  /// Enqueues \p Id unless it is already pending.
  void push(unsigned Id) {
    if (InQueue.test(Id))
      return;
    InQueue.set(Id);
    Queue.push_back(Id);
  }

  unsigned pop() {
    unsigned Id = Queue.front();
    Queue.pop_front();
    InQueue.reset(Id);
    return Id;
  }
};

/// The same FIFO-with-dedup contract as `Worklist`, but with all storage
/// carved from a caller-owned `BumpArena`: a fixed ring of `UniverseSize`
/// slots (dedup guarantees at most one pending entry per id, so the ring
/// can never overflow) plus one presence bit per id. Per-solve engines use
/// this so a whole solve costs a handful of chunk allocations instead of
/// deque-page churn. Pop order is identical to `Worklist` for the same
/// push sequence.
class ArenaWorklist {
  std::uint32_t *Ring;
  std::uint64_t *InQueue;
  std::uint32_t Capacity;
  std::uint32_t Head = 0;
  std::uint32_t Pending = 0;

public:
  ArenaWorklist(BumpArena &Pool, unsigned UniverseSize)
      : Ring(Pool.allocateArray<std::uint32_t>(UniverseSize)),
        InQueue(Pool.allocateFilled<std::uint64_t>((UniverseSize + 63) / 64,
                                                   0)),
        Capacity(UniverseSize) {}

  bool empty() const { return Pending == 0; }
  std::size_t size() const { return Pending; }

  /// Enqueues \p Id unless it is already pending.
  void push(unsigned Id) {
    std::uint64_t &Word = InQueue[Id >> 6];
    std::uint64_t Mask = std::uint64_t(1) << (Id & 63);
    if (Word & Mask)
      return;
    Word |= Mask;
    std::uint32_t Tail = Head + Pending;
    Ring[Tail >= Capacity ? Tail - Capacity : Tail] = Id;
    ++Pending;
  }

  unsigned pop() {
    unsigned Id = Ring[Head];
    ++Head;
    if (Head == Capacity)
      Head = 0;
    --Pending;
    InQueue[Id >> 6] &= ~(std::uint64_t(1) << (Id & 63));
    return Id;
  }
};

} // namespace depflow

#endif // DEPFLOW_SUPPORT_WORKLIST_H
