//===- support/Worklist.h - Deduplicating worklist ---------------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A FIFO worklist over dense integer ids that never holds an id twice.
/// Both the CFG and DFG dataflow solvers (Sections 4 and 5 of the paper) are
/// worklist algorithms; deduplication keeps their complexity bounds honest.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_SUPPORT_WORKLIST_H
#define DEPFLOW_SUPPORT_WORKLIST_H

#include "support/BitVector.h"

#include <deque>

namespace depflow {

class Worklist {
  std::deque<unsigned> Queue;
  BitVector InQueue;

public:
  explicit Worklist(unsigned UniverseSize) : InQueue(UniverseSize) {}

  bool empty() const { return Queue.empty(); }
  std::size_t size() const { return Queue.size(); }

  /// Enqueues \p Id unless it is already pending.
  void push(unsigned Id) {
    if (InQueue.test(Id))
      return;
    InQueue.set(Id);
    Queue.push_back(Id);
  }

  unsigned pop() {
    unsigned Id = Queue.front();
    Queue.pop_front();
    InQueue.reset(Id);
    return Id;
  }
};

} // namespace depflow

#endif // DEPFLOW_SUPPORT_WORKLIST_H
