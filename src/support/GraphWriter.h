//===- support/GraphWriter.h - GraphViz .dot emission -----------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal builder for GraphViz digraphs, used by the example tools to
/// visualize CFGs, SESE region nesting, and dependence flow graphs (the
/// repository's analogue of the paper's hand-drawn figures).
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_SUPPORT_GRAPHWRITER_H
#define DEPFLOW_SUPPORT_GRAPHWRITER_H

#include <string>

namespace depflow {

class GraphWriter {
  std::string Body;
  std::string Name;

  static std::string escape(const std::string &S);

public:
  explicit GraphWriter(std::string GraphName) : Name(std::move(GraphName)) {}

  /// Adds a node with the given label and optional dot attributes.
  void node(const std::string &Id, const std::string &Label,
            const std::string &ExtraAttrs = "");

  /// Adds an edge, optionally labeled/styled.
  void edge(const std::string &From, const std::string &To,
            const std::string &Label = "", const std::string &ExtraAttrs = "");

  /// Emits a raw line inside the digraph body (e.g. a subgraph cluster).
  void raw(const std::string &Line);

  /// Renders the accumulated graph as a complete dot document.
  std::string str() const;
};

} // namespace depflow

#endif // DEPFLOW_SUPPORT_GRAPHWRITER_H
