//===- support/FaultInjection.h - Deterministic fault points ----*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of named, deterministic fault points, plus the per-task
/// resource-budget scope the module pipeline runs each function under.
/// Together they are the robustness layer's proof machinery: every failure
/// path the pipeline claims to survive can be triggered on demand, at an
/// exact occurrence, from the command line (`depflow-opt
/// --fault-inject=point[@nth]`) or the `DEPFLOW_FAULT_INJECT` environment
/// variable, and continuously by `depflow-fuzz --fault-sweep`.
///
/// Registered fault points:
///
///   * `alloc-fail[@N]`      — the Nth in-task allocation returns null
///                             (wired through the counting operator-new
///                             hooks in obs/Metrics.cpp, so injected OOM
///                             unwinds through real allocation sites);
///   * `pass-fail:<pass>[@N]`— the Nth execution of the named pass fails
///                             with a Status error at the pass boundary;
///   * `analysis-fail:<analysis>[@N]` — the Nth fresh computation of the
///                             named analysis throws FaultInjectedError
///                             at the analysis boundary;
///   * `parse-truncate[@N]`  — the Nth source handed to
///                             faultTruncateSource is cut in half before
///                             parsing;
///   * `slow-pass:<ms>[@N]`  — the Nth pass execution sleeps for <ms>
///                             milliseconds (exercises the cooperative
///                             deadline).
///
/// Exactly one point is armed at a time, process-wide. Occurrences of the
/// matching event are counted by a global atomic; the point fires exactly
/// once, on the Nth matching occurrence (N defaults to 1). With no worker
/// ordering guarantees, *which* task observes the fault under `-j N` may
/// vary, but the total number of injected faults never does — the sweep
/// asserts invariants that hold for every schedule.
///
/// `TaskScope` is a thread-local RAII frame the pipeline driver opens
/// around each function task. It carries the in-flight function name (for
/// the crash handler), gates `alloc-fail` (so startup allocations can
/// never consume the fault), and enforces the two budgets: a byte budget
/// checked exactly at the allocation hook, and a cooperative per-pass
/// deadline checked at pass and analysis boundaries. Both budgets are
/// one-shot per task: after a breach is recorded, subsequent allocations
/// succeed so unwinding and diagnostics can run.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_SUPPORT_FAULTINJECTION_H
#define DEPFLOW_SUPPORT_FAULTINJECTION_H

#include "support/Error.h"

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace depflow {

enum class FaultKind {
  None,
  AllocFail,
  PassFail,
  AnalysisFail,
  ParseTruncate,
  SlowPass,
};

/// One parsed `point[:arg][@nth]` selector.
struct FaultSpec {
  FaultKind Kind = FaultKind::None;
  std::string Arg;          // Pass / analysis name (PassFail, AnalysisFail).
  std::uint64_t Millis = 0; // Sleep duration (SlowPass).
  std::uint64_t Nth = 1;    // 1-based matching occurrence that fires.

  /// Textual form that parses back to this spec.
  std::string str() const;
};

/// Parses `point[:arg][@nth]`. The pass/analysis name is not validated
/// here (the support layer knows no passes); a name that matches nothing
/// simply never fires, which the fault sweep reports as a stale point.
Status parseFaultSpec(std::string_view Text, FaultSpec &Out);

/// Arms the fault point described by \p SpecText, resetting the occurrence
/// counter. An empty spec disarms. Must only be called while no pipeline
/// workers are running.
Status configureFaultInjection(std::string_view SpecText);
void clearFaultInjection();

bool faultInjectionArmed();
/// Textual form of the armed spec; "" when disarmed.
std::string armedFaultSpec();
/// True once the armed point has consumed its Nth occurrence and fired.
/// An armed point that completes a run without firing is stale: its check
/// site is gone or its selector matches nothing (the sweep fails on it).
bool faultPointFired();
/// Matching occurrences observed since the point was armed.
std::uint64_t faultOccurrenceCount();

/// The five registered point templates, for usage errors and docs.
std::vector<std::string> faultPointNames();

/// Thrown by the analysis-boundary check site (`analysis-fail`). Caught at
/// the function-task boundary in the module pipeline driver.
class FaultInjectedError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Thrown when an analysis boundary observes the per-pass deadline already
/// blown (`--max-pass-millis`). Caught at the function-task boundary.
class TaskDeadlineError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

namespace detail {
/// The thread-local task frame TaskScope installs. Plain data only: the
/// allocation hook reads it with no allocation and no locks.
struct FaultTaskState {
  const char *Function = "";
  const char *Pass = "";
  std::uint64_t StartBytes = 0;   // obs thread-alloc counter at task start.
  std::uint64_t MaxTaskBytes = 0; // 0 = no byte budget.
  std::uint64_t MaxPassMillis = 0; // 0 = no deadline.
  std::chrono::steady_clock::time_point PassStart{};
  bool ByteBudgetBreached = false;
  bool AllocFaultFired = false;
  FaultTaskState *Prev = nullptr;
};
} // namespace detail

/// RAII frame for one function task. The constructor allocates nothing, so
/// an armed `alloc-fail` can never fire between opening the scope and the
/// pipeline's try block.
class TaskScope {
  detail::FaultTaskState State;

public:
  /// \p FunctionName must outlive the scope. \p StartBytes is the owning
  /// thread's obs::threadAllocatedBytes() at task start (the support layer
  /// cannot call obs — obs links support).
  TaskScope(const char *FunctionName, std::uint64_t StartBytes,
            std::uint64_t MaxTaskBytes = 0, std::uint64_t MaxPassMillis = 0);
  ~TaskScope();

  TaskScope(const TaskScope &) = delete;
  TaskScope &operator=(const TaskScope &) = delete;

  bool allocFaultFired() const { return State.AllocFaultFired; }
  bool byteBudgetBreached() const { return State.ByteBudgetBreached; }
  /// Name of the pass begun last (""  before the first pass) — the pass in
  /// flight when the task failed.
  const char *passInFlight() const { return State.Pass; }
};

/// The in-flight function on this thread, "" when no task is active.
/// Async-signal-safe (a TLS pointer read); the crash handler prints it.
const char *currentTaskFunction() noexcept;

/// Marks the start of \p PassName within the current task: records the
/// deadline window and the in-flight pass name. No-op without a TaskScope.
void taskPassBegin(const char *PassName);

/// Pass-boundary deadline check: fails when the pass begun by
/// taskPassBegin has exceeded --max-pass-millis. No-op without a TaskScope
/// or without a deadline.
Status taskPassDeadlineCheck();

/// Allocation check site, called from the counting operator-new hooks with
/// the thread's byte counter *before* this allocation. Returns true when
/// the allocation must fail: the task's byte budget would be crossed, or
/// an armed `alloc-fail` fires. Never fails outside a TaskScope, never
/// allocates, never throws.
bool faultShouldFailAlloc(std::uint64_t ThreadBytesSoFar,
                          std::size_t Size) noexcept;

/// Pass-boundary check site: fires `pass-fail:<name>` (as a Status error)
/// and `slow-pass:<ms>` (sleeps, then succeeds) for the Nth matching pass
/// execution.
Status faultPassCheckpoint(const char *PassName);

/// Analysis-boundary check site, called on every fresh analysis
/// computation: fires `analysis-fail:<name>` as FaultInjectedError, and
/// enforces the cooperative deadline as TaskDeadlineError.
void faultAnalysisCheckpoint(const char *AnalysisName);

/// Parse-boundary check site: when `parse-truncate` fires, returns the
/// first half of \p Source, otherwise \p Source unchanged.
std::string faultTruncateSource(std::string_view Source);

} // namespace depflow

#endif // DEPFLOW_SUPPORT_FAULTINJECTION_H
