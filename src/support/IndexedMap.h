//===- support/IndexedMap.h - Vector-backed dense maps ----------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `IndexedMap<Id, T>` is a dense map from an integral id type to values,
/// growing on demand. Ids throughout depflow are small dense integers
/// (block ids, edge ids, variable ids), so vector-backed maps are both the
/// fastest and the most deterministic container choice.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_SUPPORT_INDEXEDMAP_H
#define DEPFLOW_SUPPORT_INDEXEDMAP_H

#include <cassert>
#include <cstddef>
#include <vector>

namespace depflow {

template <typename IdT, typename T> class IndexedMap {
  std::vector<T> Storage;
  T Default{};

public:
  IndexedMap() = default;
  explicit IndexedMap(T DefaultValue) : Default(std::move(DefaultValue)) {}

  /// Ensures ids [0, Size) are addressable.
  void grow(std::size_t Size) {
    if (Storage.size() < Size)
      Storage.resize(Size, Default);
  }

  T &operator[](IdT Id) {
    std::size_t Idx = static_cast<std::size_t>(Id);
    grow(Idx + 1);
    return Storage[Idx];
  }

  const T &lookup(IdT Id) const {
    std::size_t Idx = static_cast<std::size_t>(Id);
    return Idx < Storage.size() ? Storage[Idx] : Default;
  }

  std::size_t size() const { return Storage.size(); }
  void clear() { Storage.clear(); }
};

} // namespace depflow

#endif // DEPFLOW_SUPPORT_INDEXEDMAP_H
