//===- support/Arena.h - Bump-pointer arena allocation ----------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A chunked bump-pointer arena for the hot kernels' flat tables. The DFG,
/// the cycle-equivalence solver, and the sparse dataflow engines allocate
/// many short-lived or co-lifetime arrays; an arena turns those into a
/// handful of chunk allocations with trivial (pointer-bump) dispensing.
///
/// Contract:
///
///   * `allocate()`/`allocateArray<T>()` hand out storage from the current
///     chunk, growing geometrically when a chunk fills. Storage is never
///     freed individually — the whole arena dies (or resets) at once.
///   * Only trivially-destructible payloads belong in an arena: nothing is
///     destroyed, only deallocated.
///   * Chunks live on the heap, so a *moved* arena keeps every pointer into
///     it valid — the relocatability property the cached analysis results
///     (DepFlowGraph and friends) rely on.
///   * `reset()` is cheap: the largest chunk is retained and rewound, the
///     rest are returned to the heap. Under AddressSanitizer the retained
///     chunk's storage is re-poisoned, so any dangling pointer into a reset
///     arena faults immediately instead of reading stale bytes.
///
/// Telemetry: every chunk allocation feeds the "arena" statistics group
/// (bytes requested, chunks, and the per-arena footprint high-water mark),
/// which the bench counter sweeps export as `ctr_arena_highwater`.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_SUPPORT_ARENA_H
#define DEPFLOW_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#if defined(__SANITIZE_ADDRESS__)
#define DEPFLOW_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DEPFLOW_ASAN 1
#endif
#endif

#ifdef DEPFLOW_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace depflow {

namespace detail {
/// Statistic hooks implemented in Arena.cpp (DEPFLOW_STATISTIC objects are
/// file-local, so the header routes through these).
void arenaStatChunk(std::uint64_t ChunkBytes, std::uint64_t ArenaFootprint);
void arenaStatReset();
} // namespace detail

class BumpArena {
  struct ChunkHeader {
    ChunkHeader *Next;
    std::size_t Bytes; // payload bytes following the header
  };

  ChunkHeader *Chunks = nullptr; // newest first
  char *Cur = nullptr;
  char *End = nullptr;
  std::size_t NextChunkBytes;
  std::uint64_t Allocated = 0; // bytes handed out (incl. alignment padding)
  std::uint64_t Reserved = 0;  // bytes held in chunks

  static char *payload(ChunkHeader *C) {
    return reinterpret_cast<char *>(C + 1);
  }

  static void poison(void *P, std::size_t N) {
#ifdef DEPFLOW_ASAN
    __asan_poison_memory_region(P, N);
#else
    (void)P;
    (void)N;
#endif
  }
  static void unpoison(void *P, std::size_t N) {
#ifdef DEPFLOW_ASAN
    __asan_unpoison_memory_region(P, N);
#else
    (void)P;
    (void)N;
#endif
  }

  /// Chunks double geometrically but the growth is capped: past the cap a
  /// chunk is either the cap or exactly what the oversized request needs.
  /// An uncapped doubling off a large precisely-sized first chunk would
  /// waste up to 2x the footprint on one overflow allocation.
  static constexpr std::size_t MaxChunkGrowth = 256 * 1024;

  void newChunk(std::size_t MinBytes) {
    std::size_t Bytes = NextChunkBytes;
    if (Bytes < MinBytes)
      Bytes = MinBytes;
    auto *C = static_cast<ChunkHeader *>(
        ::operator new(sizeof(ChunkHeader) + Bytes));
    C->Next = Chunks;
    C->Bytes = Bytes;
    Chunks = C;
    Cur = payload(C);
    End = Cur + Bytes;
    poison(Cur, Bytes);
    Reserved += Bytes;
    NextChunkBytes = Bytes * 2 < MaxChunkGrowth ? Bytes * 2 : MaxChunkGrowth;
    detail::arenaStatChunk(Bytes, Reserved);
  }

  void freeChunks(ChunkHeader *C) {
    while (C) {
      ChunkHeader *Next = C->Next;
      unpoison(payload(C), C->Bytes);
      ::operator delete(C);
      C = Next;
    }
  }

public:
  /// \p FirstChunkBytes sizes the first chunk; later chunks double. Callers
  /// that know their footprint pass it to get a single chunk.
  explicit BumpArena(std::size_t FirstChunkBytes = 4096)
      : NextChunkBytes(FirstChunkBytes < 64 ? 64 : FirstChunkBytes) {}

  ~BumpArena() { freeChunks(Chunks); }

  BumpArena(BumpArena &&O) noexcept
      : Chunks(O.Chunks), Cur(O.Cur), End(O.End),
        NextChunkBytes(O.NextChunkBytes), Allocated(O.Allocated),
        Reserved(O.Reserved) {
    O.Chunks = nullptr;
    O.Cur = O.End = nullptr;
    O.Allocated = O.Reserved = 0;
  }
  BumpArena &operator=(BumpArena &&O) noexcept {
    if (this != &O) {
      freeChunks(Chunks);
      Chunks = O.Chunks;
      Cur = O.Cur;
      End = O.End;
      NextChunkBytes = O.NextChunkBytes;
      Allocated = O.Allocated;
      Reserved = O.Reserved;
      O.Chunks = nullptr;
      O.Cur = O.End = nullptr;
      O.Allocated = O.Reserved = 0;
    }
    return *this;
  }
  BumpArena(const BumpArena &) = delete;
  BumpArena &operator=(const BumpArena &) = delete;

  void *allocate(std::size_t Bytes, std::size_t Align) {
    assert(Align && (Align & (Align - 1)) == 0 && "alignment must be 2^k");
    assert(Align <= alignof(std::max_align_t) &&
           "over-aligned arena payloads are not supported");
    auto Base = reinterpret_cast<std::uintptr_t>(Cur);
    std::size_t Pad = (Align - (Base & (Align - 1))) & (Align - 1);
    if (!Cur || std::size_t(End - Cur) < Pad + Bytes) {
      newChunk(Bytes + Align);
      Base = reinterpret_cast<std::uintptr_t>(Cur);
      Pad = (Align - (Base & (Align - 1))) & (Align - 1);
    }
    char *P = Cur + Pad;
    Cur = P + Bytes;
    unpoison(P, Bytes);
    Allocated += Pad + Bytes;
    return P;
  }

  /// Uninitialized storage for \p N objects of trivially-destructible T.
  template <typename T> T *allocateArray(std::size_t N) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arenas never run destructors");
    return static_cast<T *>(allocate(N * sizeof(T), alignof(T)));
  }

  /// \p N objects of trivially-copyable T, filled with \p Init.
  template <typename T> T *allocateFilled(std::size_t N, const T &Init) {
    T *P = allocateArray<T>(N);
    for (std::size_t I = 0; I != N; ++I)
      P[I] = Init;
    return P;
  }

  /// Rewinds the arena: the largest (newest) chunk survives, the rest go
  /// back to the heap, and the retained storage is poisoned again so stale
  /// pointers into the previous generation fault under ASan.
  void reset() {
    if (!Chunks) {
      Allocated = 0;
      return;
    }
    freeChunks(Chunks->Next);
    Chunks->Next = nullptr;
    Cur = payload(Chunks);
    End = Cur + Chunks->Bytes;
    poison(Cur, Chunks->Bytes);
    Reserved = Chunks->Bytes;
    Allocated = 0;
    detail::arenaStatReset();
  }

  /// Bytes handed out since construction/reset (alignment padding counts).
  std::uint64_t bytesAllocated() const { return Allocated; }
  /// Bytes currently held in chunks.
  std::uint64_t bytesReserved() const { return Reserved; }

  /// True when manual ASan poisoning is compiled in (the poison-after-reset
  /// test is meaningful only then).
  static constexpr bool poisoningActive() {
#ifdef DEPFLOW_ASAN
    return true;
#else
    return false;
#endif
  }

  /// Whether \p P currently sits in a poisoned region; always false without
  /// ASan.
  static bool addressIsPoisoned(const void *P) {
#ifdef DEPFLOW_ASAN
    return __asan_address_is_poisoned(P);
#else
    (void)P;
    return false;
#endif
  }
};

} // namespace depflow

#endif // DEPFLOW_SUPPORT_ARENA_H
