//===- support/PackedVector.h - Compact trivially-copyable vector -*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal vector for trivially-copyable elements with 32-bit size and
/// capacity. The hot kernels (DFG builder, cycle equivalence) keep many
/// parallel columns of small scalars; `std::vector`'s 24-byte header and
/// per-element destruction machinery are pure overhead there. A
/// PackedVector is 16 bytes, grows by doubling through the counted global
/// `operator new` (so `obs::AllocDelta` still sees its traffic), and
/// copies with `memcpy`.
///
/// 32-bit sizes are a deliberate contract, not a shortcut: every graph in
/// this codebase indexes nodes/edges/instructions with `int`/`unsigned`
/// already, and halving the index width is where much of the
/// struct-of-arrays memory win comes from. Growth past 2^32-1 elements
/// asserts.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_SUPPORT_PACKEDVECTOR_H
#define DEPFLOW_SUPPORT_PACKEDVECTOR_H

#include <cassert>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace depflow {

template <typename T> class PackedVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "PackedVector holds trivially-copyable elements only");

  T *Data = nullptr;
  std::uint32_t Count = 0;
  std::uint32_t Cap = 0;

  void grow(std::uint32_t MinCap) {
    std::uint32_t NewCap = Cap ? Cap * 2 : 8;
    if (NewCap < MinCap)
      NewCap = MinCap;
    T *NewData = static_cast<T *>(::operator new(std::size_t(NewCap) *
                                                 sizeof(T)));
    if (Count)
      std::memcpy(NewData, Data, std::size_t(Count) * sizeof(T));
    ::operator delete(Data);
    Data = NewData;
    Cap = NewCap;
  }

public:
  PackedVector() = default;
  explicit PackedVector(std::uint32_t N, const T &Init = T()) {
    assign(N, Init);
  }

  PackedVector(const PackedVector &O) {
    if (O.Count) {
      grow(O.Count);
      std::memcpy(Data, O.Data, std::size_t(O.Count) * sizeof(T));
      Count = O.Count;
    }
  }
  PackedVector &operator=(const PackedVector &O) {
    if (this != &O) {
      Count = 0;
      if (O.Count) {
        if (Cap < O.Count)
          grow(O.Count);
        std::memcpy(Data, O.Data, std::size_t(O.Count) * sizeof(T));
        Count = O.Count;
      }
    }
    return *this;
  }
  PackedVector(PackedVector &&O) noexcept
      : Data(O.Data), Count(O.Count), Cap(O.Cap) {
    O.Data = nullptr;
    O.Count = O.Cap = 0;
  }
  PackedVector &operator=(PackedVector &&O) noexcept {
    if (this != &O) {
      ::operator delete(Data);
      Data = O.Data;
      Count = O.Count;
      Cap = O.Cap;
      O.Data = nullptr;
      O.Count = O.Cap = 0;
    }
    return *this;
  }
  ~PackedVector() { ::operator delete(Data); }

  void push_back(const T &V) {
    if (Count == Cap) {
      assert(Cap != UINT32_MAX && "PackedVector overflow");
      grow(Count + 1);
    }
    Data[Count++] = V;
  }

  void reserve(std::uint32_t N) {
    if (N > Cap)
      grow(N);
  }

  void resize(std::uint32_t N, const T &Init = T()) {
    if (N > Cap)
      grow(N);
    for (std::uint32_t I = Count; I < N; ++I)
      Data[I] = Init;
    Count = N;
  }

  void assign(std::uint32_t N, const T &Init) {
    Count = 0;
    resize(N, Init);
  }

  void clear() { Count = 0; }
  void pop_back() {
    assert(Count && "pop_back on empty PackedVector");
    --Count;
  }

  T &operator[](std::uint32_t I) {
    assert(I < Count && "PackedVector index out of range");
    return Data[I];
  }
  const T &operator[](std::uint32_t I) const {
    assert(I < Count && "PackedVector index out of range");
    return Data[I];
  }

  T &back() {
    assert(Count);
    return Data[Count - 1];
  }
  const T &back() const {
    assert(Count);
    return Data[Count - 1];
  }

  T *begin() { return Data; }
  T *end() { return Data + Count; }
  const T *begin() const { return Data; }
  const T *end() const { return Data + Count; }
  T *data() { return Data; }
  const T *data() const { return Data; }

  std::uint32_t size() const { return Count; }
  std::uint32_t capacity() const { return Cap; }
  bool empty() const { return Count == 0; }
};

} // namespace depflow

#endif // DEPFLOW_SUPPORT_PACKEDVECTOR_H
