//===- support/GraphWriter.cpp - GraphViz .dot emission -------------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "support/GraphWriter.h"

using namespace depflow;

std::string GraphWriter::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out.push_back(C);
  }
  return Out;
}

void GraphWriter::node(const std::string &Id, const std::string &Label,
                       const std::string &ExtraAttrs) {
  Body += "  \"" + escape(Id) + "\" [label=\"" + escape(Label) + "\"";
  if (!ExtraAttrs.empty())
    Body += ", " + ExtraAttrs;
  Body += "];\n";
}

void GraphWriter::edge(const std::string &From, const std::string &To,
                       const std::string &Label,
                       const std::string &ExtraAttrs) {
  Body += "  \"" + escape(From) + "\" -> \"" + escape(To) + "\"";
  if (!Label.empty() || !ExtraAttrs.empty()) {
    Body += " [";
    if (!Label.empty())
      Body += "label=\"" + escape(Label) + "\"";
    if (!ExtraAttrs.empty()) {
      if (!Label.empty())
        Body += ", ";
      Body += ExtraAttrs;
    }
    Body += "]";
  }
  Body += ";\n";
}

void GraphWriter::raw(const std::string &Line) { Body += "  " + Line + "\n"; }

std::string GraphWriter::str() const {
  return "digraph \"" + escape(Name) + "\" {\n" + Body + "}\n";
}
