//===- support/Error.h - Recoverable diagnostics ----------------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Result-style diagnostics for the paths that face untrusted input: the
/// parser, the verifiers, and the pass entry points. A `Status` carries zero
/// or more diagnostics; `ok()` means none. Callers that used to assert or
/// abort on malformed input return a failing Status instead, so a driver
/// (depflow-opt, depflow-fuzz) can report the problem and keep running.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_SUPPORT_ERROR_H
#define DEPFLOW_SUPPORT_ERROR_H

#include <string>
#include <utility>
#include <vector>

namespace depflow {

/// One diagnostic message, optionally anchored to a source line.
struct Diagnostic {
  std::string Message;
  unsigned Line = 0; // 0 = no source location.

  std::string str() const {
    return Line ? "line " + std::to_string(Line) + ": " + Message : Message;
  }
};

/// Success, or an accumulated list of diagnostics.
class Status {
  std::vector<Diagnostic> Diags;

public:
  Status() = default;

  static Status success() { return Status(); }

  static Status error(std::string Message, unsigned Line = 0) {
    Status S;
    S.Diags.push_back({std::move(Message), Line});
    return S;
  }

  static Status fromMessages(const std::vector<std::string> &Messages) {
    Status S;
    for (const std::string &M : Messages)
      S.Diags.push_back({M, 0});
    return S;
  }

  bool ok() const { return Diags.empty(); }
  explicit operator bool() const { return ok(); }

  void addError(std::string Message, unsigned Line = 0) {
    Diags.push_back({std::move(Message), Line});
  }

  /// Folds another status's diagnostics into this one, with an optional
  /// context prefix ("after --pre: ...").
  void append(const Status &Other, const std::string &Context = "") {
    for (const Diagnostic &D : Other.Diags)
      Diags.push_back(
          {Context.empty() ? D.Message : Context + ": " + D.Message, D.Line});
  }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }
  std::size_t numErrors() const { return Diags.size(); }

  /// All diagnostics, newline separated.
  std::string str() const {
    std::string S;
    for (const Diagnostic &D : Diags) {
      if (!S.empty())
        S += "\n";
      S += D.str();
    }
    return S;
  }
};

} // namespace depflow

#endif // DEPFLOW_SUPPORT_ERROR_H
