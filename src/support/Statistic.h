//===- support/Statistic.h - Global statistics counters ---------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named global counters in the LLVM `STATISTIC` style. A `Statistic`
/// registers itself with a process-wide registry on first use; drivers
/// print the accumulated counts with `printStatistics` (depflow-opt's
/// `--print-stats`). Counters are cheap enough to leave enabled
/// unconditionally — one relaxed atomic increment.
///
/// Usage:
/// \code
///   DEPFLOW_STATISTIC(NumFoldedOps, "constprop", "Operands folded to
///                     constants");
///   ...
///   NumFoldedOps += Folded;
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_SUPPORT_STATISTIC_H
#define DEPFLOW_SUPPORT_STATISTIC_H

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace depflow {

class Statistic {
  const char *Group;
  const char *Name;
  const char *Desc;
  std::atomic<std::uint64_t> Value{0};
  std::atomic<bool> Registered{false};

  void registerOnce();

public:
  constexpr Statistic(const char *Group, const char *Name, const char *Desc)
      : Group(Group), Name(Name), Desc(Desc) {}

  Statistic(const Statistic &) = delete;
  Statistic &operator=(const Statistic &) = delete;

  const char *group() const { return Group; }
  const char *name() const { return Name; }
  const char *desc() const { return Desc; }
  std::uint64_t value() const { return Value.load(std::memory_order_relaxed); }

  Statistic &operator++() {
    return *this += 1;
  }
  Statistic &operator+=(std::uint64_t N) {
    registerOnce();
    Value.fetch_add(N, std::memory_order_relaxed);
    return *this;
  }
  Statistic &operator=(std::uint64_t N) {
    registerOnce();
    Value.store(N, std::memory_order_relaxed);
    return *this;
  }
};

/// One row of the statistics report.
struct StatisticSnapshot {
  std::string Group;
  std::string Name;
  std::string Desc;
  std::uint64_t Value = 0;
};

/// Every registered counter with a non-zero value (touched counters with a
/// zero value are included so resets stay visible), sorted by group then
/// name.
std::vector<StatisticSnapshot> statisticsSnapshot();

/// Renders the report in the classic `--print-stats` table form.
void printStatistics(std::FILE *Out);

/// Zeroes every registered counter (tests and long-lived drivers).
void resetStatistics();

} // namespace depflow

/// Defines a file-local statistics counter.
#define DEPFLOW_STATISTIC(Var, Group, Desc)                                   \
  static ::depflow::Statistic Var(Group, #Var, Desc)

#endif // DEPFLOW_SUPPORT_STATISTIC_H
