//===- support/Statistic.h - Global statistics counters ---------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named global counters in the LLVM `STATISTIC` style. A `Statistic`
/// registers itself with a process-wide registry on first use; drivers
/// print the accumulated counts with `printStatistics` (depflow-opt's
/// `--print-stats`). Counters are cheap enough to leave enabled
/// unconditionally — one relaxed atomic increment.
///
/// Three kinds exist:
///
///   * `Statistic` — a monotonically accumulating counter (the default).
///   * `MaxStatistic` — a high-water gauge (e.g. the deepest PST, the
///     longest bracket list ever seen).
///   * `HistStatistic` — a log2-bucketed histogram of per-event sample
///     values (e.g. tokens sent per DFG edge) that also tracks count,
///     sum, and max.
///
/// Thread-safety contract (audited for `ModulePipeline -j N`): every
/// mutation on every kind is a relaxed atomic RMW — fetch_add for counts
/// and bucket adds, a compare-exchange loop for maxima. All of these
/// commute, and the per-function work each pass performs is independent
/// of worker scheduling, so aggregated totals are byte-identical for any
/// `-j N` even though increments interleave. No mutation takes the
/// registry lock; only registration (once per counter per process) and
/// snapshot/reset do.
///
/// Usage:
/// \code
///   DEPFLOW_STATISTIC(NumFoldedOps, "constprop", "Operands folded to
///                     constants");
///   DEPFLOW_MAX_STATISTIC(MaxListLen, "cycle-equiv", "Longest bracket
///                     list");
///   DEPFLOW_HIST_STATISTIC(HistTokens, "constprop", "Tokens per edge");
///   ...
///   NumFoldedOps += Folded;
///   MaxListLen.update(L.size());
///   HistTokens.sample(TokensOnThisEdge);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_SUPPORT_STATISTIC_H
#define DEPFLOW_SUPPORT_STATISTIC_H

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace depflow {

/// Which flavor of statistic a snapshot row came from.
enum class StatKind : std::uint8_t { Counter, Max, Histogram };

class Statistic {
  const char *Group;
  const char *Name;
  const char *Desc;
  std::atomic<std::uint64_t> Value{0};
  std::atomic<bool> Registered{false};

  void registerOnce();

public:
  constexpr Statistic(const char *Group, const char *Name, const char *Desc)
      : Group(Group), Name(Name), Desc(Desc) {}

  Statistic(const Statistic &) = delete;
  Statistic &operator=(const Statistic &) = delete;

  const char *group() const { return Group; }
  const char *name() const { return Name; }
  const char *desc() const { return Desc; }
  std::uint64_t value() const { return Value.load(std::memory_order_relaxed); }

  Statistic &operator++() {
    return *this += 1;
  }
  Statistic &operator+=(std::uint64_t N) {
    registerOnce();
    Value.fetch_add(N, std::memory_order_relaxed);
    return *this;
  }
  Statistic &operator=(std::uint64_t N) {
    registerOnce();
    Value.store(N, std::memory_order_relaxed);
    return *this;
  }
};

/// A high-water gauge: `update(N)` raises the recorded value to N if N is
/// larger. Max commutes, so parallel updates stay deterministic.
class MaxStatistic {
  const char *Group;
  const char *Name;
  const char *Desc;
  std::atomic<std::uint64_t> Value{0};
  std::atomic<bool> Registered{false};

  void registerOnce();
  friend void resetStatistics();

public:
  constexpr MaxStatistic(const char *Group, const char *Name, const char *Desc)
      : Group(Group), Name(Name), Desc(Desc) {}

  MaxStatistic(const MaxStatistic &) = delete;
  MaxStatistic &operator=(const MaxStatistic &) = delete;

  const char *group() const { return Group; }
  const char *name() const { return Name; }
  const char *desc() const { return Desc; }
  std::uint64_t value() const { return Value.load(std::memory_order_relaxed); }

  void update(std::uint64_t N) {
    registerOnce();
    std::uint64_t Cur = Value.load(std::memory_order_relaxed);
    while (Cur < N && !Value.compare_exchange_weak(Cur, N,
                                                   std::memory_order_relaxed))
      ;
  }
};

/// A log2-bucketed histogram of sample values. Bucket 0 holds samples of
/// 0, bucket i>=1 holds samples in [2^(i-1), 2^i); the last bucket is an
/// overflow bucket. Count, sum, and max ride along, so the report can
/// show both the distribution and its moments.
class HistStatistic {
public:
  static constexpr unsigned NumBuckets = 16;

private:
  const char *Group;
  const char *Name;
  const char *Desc;
  std::atomic<std::uint64_t> Count{0};
  std::atomic<std::uint64_t> Sum{0};
  std::atomic<std::uint64_t> Max{0};
  std::atomic<std::uint64_t> Buckets[NumBuckets] = {};
  std::atomic<bool> Registered{false};

  void registerOnce();
  friend void resetStatistics();

public:
  constexpr HistStatistic(const char *Group, const char *Name,
                          const char *Desc)
      : Group(Group), Name(Name), Desc(Desc) {}

  HistStatistic(const HistStatistic &) = delete;
  HistStatistic &operator=(const HistStatistic &) = delete;

  const char *group() const { return Group; }
  const char *name() const { return Name; }
  const char *desc() const { return Desc; }
  std::uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  std::uint64_t bucket(unsigned I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }

  /// Maps a sample value to its bucket index.
  static unsigned bucketIndex(std::uint64_t V) {
    unsigned I = 0;
    while (V) {
      ++I;
      V >>= 1;
    }
    return I < NumBuckets ? I : NumBuckets - 1;
  }

  void sample(std::uint64_t V) {
    registerOnce();
    Count.fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(V, std::memory_order_relaxed);
    Buckets[bucketIndex(V)].fetch_add(1, std::memory_order_relaxed);
    std::uint64_t Cur = Max.load(std::memory_order_relaxed);
    while (Cur < V &&
           !Max.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
      ;
  }
};

/// One row of the statistics report. `Value` is the count for counters,
/// the high-water mark for max gauges, and the sample sum for histograms
/// (so a plain "total work" reading works uniformly); histograms
/// additionally fill Count/Max/Buckets.
struct StatisticSnapshot {
  std::string Group;
  std::string Name;
  std::string Desc;
  std::uint64_t Value = 0;
  StatKind Kind = StatKind::Counter;
  std::uint64_t Count = 0;
  std::uint64_t Max = 0;
  std::vector<std::uint64_t> Buckets;
};

/// Every registered counter with a non-zero value (touched counters with a
/// zero value are included so resets stay visible), sorted by group then
/// name.
std::vector<StatisticSnapshot> statisticsSnapshot();

/// Looks up one registered statistic by group and name; returns its
/// snapshot `Value` (0 when never touched). The lookup helper the tests
/// and the bench counter sweeps are built on.
std::uint64_t statisticValue(const char *Group, const char *Name);

/// Renders the report in the classic `--print-stats` table form.
void printStatistics(std::FILE *Out);

/// Zeroes every registered counter (tests and long-lived drivers).
void resetStatistics();

} // namespace depflow

/// Defines a file-local statistics counter.
#define DEPFLOW_STATISTIC(Var, Group, Desc)                                   \
  static ::depflow::Statistic Var(Group, #Var, Desc)

/// Defines a file-local high-water gauge.
#define DEPFLOW_MAX_STATISTIC(Var, Group, Desc)                               \
  static ::depflow::MaxStatistic Var(Group, #Var, Desc)

/// Defines a file-local log2 histogram.
#define DEPFLOW_HIST_STATISTIC(Var, Group, Desc)                              \
  static ::depflow::HistStatistic Var(Group, #Var, Desc)

#endif // DEPFLOW_SUPPORT_STATISTIC_H
