//===- support/RNG.h - Deterministic random numbers -------------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64: a tiny, fast, seedable generator. Every generated workload in
/// tests and benchmarks is a pure function of its seed, so failures are
/// reproducible from the seed alone.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_SUPPORT_RNG_H
#define DEPFLOW_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace depflow {

class RNG {
  std::uint64_t State;

public:
  explicit RNG(std::uint64_t Seed) : State(Seed) {}

  std::uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    std::uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform integer in [0, Bound).
  std::uint64_t nextBelow(std::uint64_t Bound) {
    assert(Bound > 0 && "nextBelow requires a positive bound");
    return next() % Bound;
  }

  /// Uniform integer in [Lo, Hi] inclusive.
  std::int64_t nextInRange(std::int64_t Lo, std::int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + std::int64_t(nextBelow(std::uint64_t(Hi - Lo + 1)));
  }

  /// Returns true with probability Num/Den.
  bool chance(std::uint64_t Num, std::uint64_t Den) {
    return nextBelow(Den) < Num;
  }
};

} // namespace depflow

#endif // DEPFLOW_SUPPORT_RNG_H
