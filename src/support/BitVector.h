//===- support/BitVector.h - Dynamic bit vector -----------------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dynamically sized bit vector with the set operations the dataflow
/// solvers need (union, intersection, difference, anyCommon). Mirrors the
/// relevant slice of llvm/ADT/BitVector.h.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_SUPPORT_BITVECTOR_H
#define DEPFLOW_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace depflow {

class BitVector {
  using Word = std::uint64_t;
  static constexpr unsigned WordBits = 64;

  std::vector<Word> Words;
  unsigned NumBits = 0;

  static unsigned numWords(unsigned Bits) {
    return (Bits + WordBits - 1) / WordBits;
  }

  /// Zeroes any bits in the final word beyond NumBits.
  void clearUnusedBits() {
    unsigned Extra = NumBits % WordBits;
    if (Extra && !Words.empty())
      Words.back() &= (Word(1) << Extra) - 1;
  }

public:
  BitVector() = default;
  explicit BitVector(unsigned Size, bool Value = false)
      : Words(numWords(Size), Value ? ~Word(0) : Word(0)), NumBits(Size) {
    clearUnusedBits();
  }

  unsigned size() const { return NumBits; }
  bool empty() const { return NumBits == 0; }

  void resize(unsigned Size, bool Value = false) {
    unsigned OldBits = NumBits;
    Words.resize(numWords(Size), Value ? ~Word(0) : Word(0));
    NumBits = Size;
    if (Value && Size > OldBits) {
      // The old final word may have had stale zero padding; fill it.
      for (unsigned I = OldBits; I < Size && I % WordBits != 0; ++I)
        set(I);
    }
    clearUnusedBits();
  }

  bool test(unsigned Idx) const {
    assert(Idx < NumBits && "BitVector index out of range");
    return (Words[Idx / WordBits] >> (Idx % WordBits)) & 1;
  }
  bool operator[](unsigned Idx) const { return test(Idx); }

  BitVector &set(unsigned Idx) {
    assert(Idx < NumBits && "BitVector index out of range");
    Words[Idx / WordBits] |= Word(1) << (Idx % WordBits);
    return *this;
  }

  BitVector &set() {
    for (Word &W : Words)
      W = ~Word(0);
    clearUnusedBits();
    return *this;
  }

  BitVector &reset(unsigned Idx) {
    assert(Idx < NumBits && "BitVector index out of range");
    Words[Idx / WordBits] &= ~(Word(1) << (Idx % WordBits));
    return *this;
  }

  BitVector &reset() {
    for (Word &W : Words)
      W = 0;
    return *this;
  }

  bool none() const {
    for (Word W : Words)
      if (W)
        return false;
    return true;
  }
  bool any() const { return !none(); }

  unsigned count() const {
    unsigned N = 0;
    for (Word W : Words)
      N += __builtin_popcountll(W);
    return N;
  }

  /// Returns the index of the first set bit, or -1 if none.
  int findFirst() const {
    for (unsigned I = 0, E = Words.size(); I != E; ++I)
      if (Words[I])
        return int(I * WordBits + __builtin_ctzll(Words[I]));
    return -1;
  }

  /// Returns the index of the first set bit after \p Prev, or -1.
  int findNext(unsigned Prev) const {
    unsigned Idx = Prev + 1;
    if (Idx >= NumBits)
      return -1;
    unsigned WordIdx = Idx / WordBits;
    Word Copy = Words[WordIdx] & (~Word(0) << (Idx % WordBits));
    while (true) {
      if (Copy)
        return int(WordIdx * WordBits + __builtin_ctzll(Copy));
      if (++WordIdx >= Words.size())
        return -1;
      Copy = Words[WordIdx];
    }
  }

  bool operator==(const BitVector &RHS) const {
    return NumBits == RHS.NumBits && Words == RHS.Words;
  }
  bool operator!=(const BitVector &RHS) const { return !(*this == RHS); }

  BitVector &operator|=(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "BitVector size mismatch");
    for (unsigned I = 0, E = Words.size(); I != E; ++I)
      Words[I] |= RHS.Words[I];
    return *this;
  }

  BitVector &operator&=(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "BitVector size mismatch");
    for (unsigned I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= RHS.Words[I];
    return *this;
  }

  /// Set difference: this &= ~RHS.
  BitVector &resetAll(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "BitVector size mismatch");
    for (unsigned I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= ~RHS.Words[I];
    return *this;
  }

  /// Returns true if this and \p RHS share any set bit.
  bool anyCommon(const BitVector &RHS) const {
    assert(NumBits == RHS.NumBits && "BitVector size mismatch");
    for (unsigned I = 0, E = Words.size(); I != E; ++I)
      if (Words[I] & RHS.Words[I])
        return true;
    return false;
  }
};

} // namespace depflow

#endif // DEPFLOW_SUPPORT_BITVECTOR_H
