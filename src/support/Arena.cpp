//===- support/Arena.cpp - Arena statistics hooks -------------------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/Statistic.h"

namespace depflow {

DEPFLOW_STATISTIC(NumArenaBytesRequested, "arena",
                  "Bytes requested from the heap for arena chunks");
DEPFLOW_STATISTIC(NumArenaChunks, "arena", "Arena chunks allocated");
DEPFLOW_STATISTIC(NumArenaResets, "arena", "Arena reset-and-reuse cycles");
DEPFLOW_MAX_STATISTIC(MaxArenaFootprint, "arena",
                      "Largest reserved footprint of any single arena");

namespace detail {

void arenaStatChunk(std::uint64_t ChunkBytes, std::uint64_t ArenaFootprint) {
  NumArenaBytesRequested += ChunkBytes;
  ++NumArenaChunks;
  MaxArenaFootprint.update(ArenaFootprint);
}

void arenaStatReset() { ++NumArenaResets; }

} // namespace detail
} // namespace depflow
