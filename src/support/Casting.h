//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ---------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Opt-in hand-rolled RTTI in the style of llvm/Support/Casting.h. A class
/// hierarchy participates by exposing a `Kind` discriminator and a static
/// `classof(const Base *)` on every concrete class.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_SUPPORT_CASTING_H
#define DEPFLOW_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace depflow {

/// Returns true if \p Val is an instance of \p To (or one of \p Tos...).
template <typename To, typename... Tos, typename From>
bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  if constexpr (std::is_base_of_v<To, From>)
    return true;
  else if (To::classof(Val))
    return true;
  if constexpr (sizeof...(Tos) > 0)
    return isa<Tos...>(Val);
  else
    return false;
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like isa<>, but tolerates a null pointer (for which it returns false).
template <typename To, typename From> bool isa_and_present(const From *Val) {
  return Val && isa<To>(Val);
}

/// Like dyn_cast<>, but tolerates (and propagates) a null pointer.
template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return Val && isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Marks a point in the code that must never be reached.
[[noreturn]] inline void depflow_unreachable(const char *Msg) {
  (void)Msg;
  assert(false && "depflow_unreachable reached");
  __builtin_unreachable();
}

} // namespace depflow

#endif // DEPFLOW_SUPPORT_CASTING_H
