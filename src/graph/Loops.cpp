//===- graph/Loops.cpp - Natural loop recognition --------------------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "graph/Loops.h"

#include <algorithm>
#include <map>

using namespace depflow;

LoopForest::LoopForest(Function &F) {
  F.recomputePreds();
  Digraph G = cfgDigraph(F);
  DomTree DT(G, F.entry()->id());
  InnermostOf.assign(F.numBlocks(), -1);

  // Retreating edges: edges into a node still on the DFS stack. The
  // dominated ones are natural back edges; the rest witness irreducible
  // control flow.
  std::vector<char> State(F.numBlocks(), 0); // 0 new, 1 on stack, 2 done
  {
    std::vector<std::pair<unsigned, unsigned>> Stack{{F.entry()->id(), 0}};
    State[F.entry()->id()] = 1;
    while (!Stack.empty()) {
      auto &[N, Cursor] = Stack.back();
      const auto &Succs = G.succs(N);
      if (Cursor < Succs.size()) {
        unsigned S = Succs[Cursor++];
        unsigned From = N;
        if (State[S] == 0) {
          State[S] = 1;
          Stack.push_back({S, 0});
        } else if (State[S] == 1 && !DT.dominates(S, From)) {
          Irreducible.push_back({From, S});
        }
      } else {
        State[N] = 2;
        Stack.pop_back();
      }
    }
  }

  // Back edges u->h with h dominating u define natural loops; loops with
  // one header merge.
  std::map<unsigned, std::vector<unsigned>> BodyOf; // header -> blocks
  for (const auto &BB : F.blocks()) {
    for (BasicBlock *S : BB->successors()) {
      unsigned U = BB->id(), H = S->id();
      if (!DT.dominates(H, U))
        continue;
      // Collect the natural loop of (U, H): H plus all blocks that reach U
      // without passing H.
      auto &Body = BodyOf[H];
      if (Body.empty())
        Body.push_back(H);
      std::vector<unsigned> Stack{U};
      auto Add = [&](unsigned B) {
        if (std::find(Body.begin(), Body.end(), B) == Body.end()) {
          Body.push_back(B);
          return true;
        }
        return false;
      };
      if (Add(U))
        while (!Stack.empty()) {
          unsigned B = Stack.back();
          Stack.pop_back();
          for (unsigned P : G.preds(B))
            if (P != H && Add(P))
              Stack.push_back(P);
        }
    }
  }

  for (auto &[Header, Body] : BodyOf) {
    std::sort(Body.begin(), Body.end());
    Loop L;
    L.Id = unsigned(Loops.size());
    L.Header = Header;
    L.Blocks = Body;
    Loops.push_back(std::move(L));
  }

  // Nesting: loop A is inside loop B iff B contains A's header and A != B.
  // Parent = smallest container.
  for (Loop &L : Loops) {
    int Best = -1;
    std::size_t BestSize = 0;
    for (const Loop &Candidate : Loops) {
      if (Candidate.Id == L.Id || !Candidate.contains(L.Header))
        continue;
      if (Best < 0 || Candidate.Blocks.size() < BestSize) {
        Best = int(Candidate.Id);
        BestSize = Candidate.Blocks.size();
      }
    }
    L.Parent = Best;
    if (Best >= 0)
      Loops[unsigned(Best)].Children.push_back(L.Id);
  }
  for (Loop &L : Loops) {
    unsigned Depth = 1;
    for (int P = L.Parent; P >= 0; P = Loops[unsigned(P)].Parent)
      ++Depth;
    L.Depth = Depth;
  }

  // Innermost loop per block: the smallest loop containing it.
  for (const Loop &L : Loops) {
    for (unsigned B : L.Blocks) {
      int Cur = InnermostOf[B];
      if (Cur < 0 || L.Blocks.size() < Loops[unsigned(Cur)].Blocks.size())
        InnermostOf[B] = int(L.Id);
    }
  }
}
