//===- graph/Dominators.h - Dominator and postdominator trees ---*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator trees via the Cooper-Harvey-Kennedy iterative algorithm, over
/// arbitrary digraphs. Postdominators are dominators of the reversed graph
/// rooted at the exit. Dominance queries are O(1) after construction via
/// Euler intervals on the dominator tree.
///
/// Note the paper's headline algorithms (cycle equivalence, SESE, fast CDG)
/// deliberately avoid dominators; this module exists for the *baselines*
/// (Cytron SSA, FOW control dependence) and for validating the fast paths.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_GRAPH_DOMINATORS_H
#define DEPFLOW_GRAPH_DOMINATORS_H

#include "graph/Digraph.h"

#include <vector>

namespace depflow {

class DomTree {
  std::vector<int> Idom;                       // -1 for root or unreachable.
  std::vector<bool> Reachable;                 // From the root.
  std::vector<std::vector<unsigned>> Children; // Dominator tree children.
  std::vector<unsigned> In, Out;               // Euler intervals.
  unsigned Root = 0;

public:
  /// Builds the dominator tree of \p G rooted at \p RootNode. Nodes not
  /// reachable from the root are left with idom == -1 and are dominated by
  /// nothing.
  DomTree(const Digraph &G, unsigned RootNode);

  unsigned root() const { return Root; }

  bool isReachable(unsigned N) const { return Reachable[N]; }

  /// Immediate dominator, or -1 for the root and unreachable nodes.
  int idom(unsigned N) const { return Idom[N]; }

  const std::vector<unsigned> &children(unsigned N) const {
    return Children[N];
  }

  /// Reflexive dominance: true if \p A dominates \p B. Unreachable nodes
  /// dominate nothing and are dominated by nothing.
  bool dominates(unsigned A, unsigned B) const {
    if (!Reachable[A] || !Reachable[B])
      return false;
    return In[A] <= In[B] && Out[B] <= Out[A];
  }

  bool strictlyDominates(unsigned A, unsigned B) const {
    return A != B && dominates(A, B);
  }
};

/// Brute-force dominance for validation: A dominates B iff removing A
/// makes B unreachable from the root (or A == B). O(N·E).
bool bruteForceDominates(const Digraph &G, unsigned Root, unsigned A,
                         unsigned B);

/// Dominance frontiers (Cytron et al.): DF[n] = nodes w such that n
/// dominates a predecessor of w but not strictly w itself.
std::vector<std::vector<unsigned>> dominanceFrontiers(const Digraph &G,
                                                      const DomTree &DT);

} // namespace depflow

#endif // DEPFLOW_GRAPH_DOMINATORS_H
