//===- graph/Dominators.cpp - Dominator trees -----------------------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "graph/Dominators.h"

#include <algorithm>
#include <cassert>

using namespace depflow;

/// Computes a reverse postorder of the nodes reachable from Root.
static std::vector<unsigned> reversePostorder(const Digraph &G,
                                              unsigned Root) {
  std::vector<unsigned> Postorder;
  std::vector<bool> Seen(G.numNodes(), false);
  // Iterative DFS with explicit child cursors.
  std::vector<std::pair<unsigned, unsigned>> Stack;
  Stack.emplace_back(Root, 0);
  Seen[Root] = true;
  while (!Stack.empty()) {
    auto &[Node, Cursor] = Stack.back();
    const auto &Succs = G.succs(Node);
    if (Cursor < Succs.size()) {
      unsigned Next = Succs[Cursor++];
      if (!Seen[Next]) {
        Seen[Next] = true;
        Stack.emplace_back(Next, 0);
      }
    } else {
      Postorder.push_back(Node);
      Stack.pop_back();
    }
  }
  std::reverse(Postorder.begin(), Postorder.end());
  return Postorder;
}

DomTree::DomTree(const Digraph &G, unsigned RootNode) : Root(RootNode) {
  unsigned N = G.numNodes();
  Idom.assign(N, -1);
  Reachable.assign(N, false);
  Children.assign(N, {});
  In.assign(N, 0);
  Out.assign(N, 0);

  std::vector<unsigned> RPO = reversePostorder(G, Root);
  std::vector<int> RPONum(N, -1);
  for (unsigned I = 0, E = unsigned(RPO.size()); I != E; ++I) {
    RPONum[RPO[I]] = int(I);
    Reachable[RPO[I]] = true;
  }

  // Cooper-Harvey-Kennedy: iterate to a fixed point, intersecting the idoms
  // of processed predecessors. Idom values here are RPO indices.
  std::vector<int> Doms(RPO.size(), -1);
  Doms[0] = 0; // Root's idom is itself during the iteration.

  auto Intersect = [&](int A, int B) {
    while (A != B) {
      while (A > B)
        A = Doms[A];
      while (B > A)
        B = Doms[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned I = 1, E = unsigned(RPO.size()); I != E; ++I) {
      unsigned Node = RPO[I];
      int NewIdom = -1;
      for (unsigned P : G.preds(Node)) {
        int PNum = RPONum[P];
        if (PNum < 0 || Doms[PNum] < 0)
          continue; // Unreachable or unprocessed predecessor.
        NewIdom = NewIdom < 0 ? PNum : Intersect(NewIdom, PNum);
      }
      assert(NewIdom >= 0 && "reachable node with no processed predecessor");
      if (Doms[I] != NewIdom) {
        Doms[I] = NewIdom;
        Changed = true;
      }
    }
  }

  for (unsigned I = 1, E = unsigned(RPO.size()); I != E; ++I) {
    Idom[RPO[I]] = int(RPO[unsigned(Doms[I])]);
    Children[RPO[unsigned(Doms[I])]].push_back(RPO[I]);
  }

  // Euler intervals over the dominator tree for O(1) dominance queries.
  unsigned Clock = 0;
  std::vector<std::pair<unsigned, unsigned>> Stack;
  Stack.emplace_back(Root, 0);
  In[Root] = Clock++;
  while (!Stack.empty()) {
    auto &[Node, Cursor] = Stack.back();
    if (Cursor < Children[Node].size()) {
      unsigned Child = Children[Node][Cursor++];
      In[Child] = Clock++;
      Stack.emplace_back(Child, 0);
    } else {
      Out[Node] = Clock++;
      Stack.pop_back();
    }
  }
}

bool depflow::bruteForceDominates(const Digraph &G, unsigned Root, unsigned A,
                                  unsigned B) {
  std::vector<bool> FromRoot = G.reachableFrom(Root);
  if (!FromRoot[A] || !FromRoot[B])
    return false;
  if (A == B)
    return true;
  if (A == Root)
    return true;
  if (B == Root)
    return false;
  // BFS from Root avoiding A; if B is still reachable, A does not dominate.
  std::vector<bool> Seen(G.numNodes(), false);
  std::vector<unsigned> Stack{Root};
  Seen[Root] = true;
  Seen[A] = true; // Block traversal through A.
  while (!Stack.empty()) {
    unsigned N = Stack.back();
    Stack.pop_back();
    for (unsigned S : G.succs(N)) {
      if (S == B)
        return false;
      if (!Seen[S]) {
        Seen[S] = true;
        Stack.push_back(S);
      }
    }
  }
  return true;
}

std::vector<std::vector<unsigned>>
depflow::dominanceFrontiers(const Digraph &G, const DomTree &DT) {
  // Note: no |preds| >= 2 guard. For a single-pred node b, idom(b) is that
  // pred and the walk adds nothing — except when b is the root (idom -1),
  // where back edges into the root legitimately put the root into its own
  // ancestors' frontiers.
  std::vector<std::vector<unsigned>> DF(G.numNodes());
  for (unsigned B = 0, N = G.numNodes(); B != N; ++B) {
    if (!DT.isReachable(B))
      continue;
    for (unsigned P : G.preds(B)) {
      if (!DT.isReachable(P))
        continue;
      int Runner = int(P);
      while (Runner >= 0 && Runner != DT.idom(B)) {
        DF[unsigned(Runner)].push_back(B);
        Runner = DT.idom(unsigned(Runner));
      }
    }
  }
  // Deduplicate (a node can reach the same frontier through several preds).
  for (auto &Frontier : DF) {
    std::sort(Frontier.begin(), Frontier.end());
    Frontier.erase(std::unique(Frontier.begin(), Frontier.end()),
                   Frontier.end());
  }
  return DF;
}
