//===- graph/Digraph.cpp - Generic directed graph -------------------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "graph/Digraph.h"

#include "ir/CFGEdges.h"
#include "ir/Function.h"

using namespace depflow;

Digraph Digraph::reversed() const {
  Digraph R(numNodes());
  for (unsigned N = 0, E = numNodes(); N != E; ++N)
    for (unsigned S : Succs[N])
      R.addEdge(S, N);
  return R;
}

std::vector<bool> Digraph::reachableFrom(unsigned Root) const {
  std::vector<bool> Seen(numNodes(), false);
  std::vector<unsigned> Stack{Root};
  Seen[Root] = true;
  while (!Stack.empty()) {
    unsigned N = Stack.back();
    Stack.pop_back();
    for (unsigned S : Succs[N]) {
      if (!Seen[S]) {
        Seen[S] = true;
        Stack.push_back(S);
      }
    }
  }
  return Seen;
}

bool Digraph::reaches(unsigned From, unsigned To) const {
  return reachableFrom(From)[To];
}

Digraph depflow::cfgDigraph(const Function &F) {
  Digraph G(F.numBlocks());
  for (const auto &BB : F.blocks())
    for (BasicBlock *Succ : BB->successors())
      G.addEdge(BB->id(), Succ->id());
  return G;
}

Digraph depflow::edgeSplitDigraph(const Function &F, const CFGEdges &E) {
  Digraph G(F.numBlocks() + E.size());
  for (unsigned Id = 0, N = E.size(); Id != N; ++Id) {
    const CFGEdge &Edge = E.edge(Id);
    unsigned Dummy = F.numBlocks() + Id;
    G.addEdge(Edge.From->id(), Dummy);
    G.addEdge(Dummy, Edge.To->id());
  }
  return G;
}
