//===- graph/Digraph.h - Generic directed graph -----------------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A plain adjacency-list digraph over dense node ids. The structural
/// algorithms (dominators, cycle equivalence, control dependence) run over
/// this type so they can be tested on arbitrary graphs, not just the graphs
/// of IR functions. Conversions from Function CFGs live here too.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_GRAPH_DIGRAPH_H
#define DEPFLOW_GRAPH_DIGRAPH_H

#include <cassert>
#include <vector>

namespace depflow {

class CFGEdges;
class Function;

class Digraph {
  std::vector<std::vector<unsigned>> Succs;
  std::vector<std::vector<unsigned>> Preds;
  unsigned EdgeCount = 0;

public:
  Digraph() = default;
  explicit Digraph(unsigned NumNodes) : Succs(NumNodes), Preds(NumNodes) {}

  unsigned addNode() {
    Succs.emplace_back();
    Preds.emplace_back();
    return unsigned(Succs.size() - 1);
  }

  void addEdge(unsigned From, unsigned To) {
    assert(From < Succs.size() && To < Succs.size() && "node out of range");
    Succs[From].push_back(To);
    Preds[To].push_back(From);
    ++EdgeCount;
  }

  unsigned numNodes() const { return unsigned(Succs.size()); }
  unsigned numEdges() const { return EdgeCount; }

  const std::vector<unsigned> &succs(unsigned N) const {
    assert(N < Succs.size() && "node out of range");
    return Succs[N];
  }
  const std::vector<unsigned> &preds(unsigned N) const {
    assert(N < Preds.size() && "node out of range");
    return Preds[N];
  }

  /// Returns the graph with every edge direction flipped.
  Digraph reversed() const;

  /// Marks every node reachable from \p Root (following successors).
  std::vector<bool> reachableFrom(unsigned Root) const;

  /// True if \p To is reachable from \p From.
  bool reaches(unsigned From, unsigned To) const;
};

/// The block-level CFG of \p F: node ids are block ids.
Digraph cfgDigraph(const Function &F);

/// The edge-split CFG: nodes [0, numBlocks) are blocks and node
/// numBlocks + e is a dummy node inserted on CFG edge e (the paper's device
/// for extending node properties to edges, Section 3.1).
Digraph edgeSplitDigraph(const Function &F, const CFGEdges &E);

} // namespace depflow

#endif // DEPFLOW_GRAPH_DIGRAPH_H
