//===- graph/Loops.h - Natural loop recognition -----------------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural loop detection and the loop nesting forest — the "loop
/// recognition" ingredient the paper's Section 6 lists for the
/// parallelization toolkit. Loops are found from dominator back edges;
/// loops sharing a header are merged. Irreducible cycles (back edges whose
/// source is not dominated by the target) are reported separately.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_GRAPH_LOOPS_H
#define DEPFLOW_GRAPH_LOOPS_H

#include "graph/Dominators.h"
#include "ir/Function.h"

#include <vector>

namespace depflow {

struct Loop {
  unsigned Id = 0;
  unsigned Header = 0;            // Block id.
  std::vector<unsigned> Blocks;   // Sorted block ids, header included.
  int Parent = -1;                // Enclosing loop, or -1.
  std::vector<unsigned> Children; // Nested loops.
  unsigned Depth = 1;             // 1 = outermost.

  bool contains(unsigned BlockId) const {
    for (unsigned B : Blocks)
      if (B == BlockId)
        return true;
    return false;
  }
};

class LoopForest {
  std::vector<Loop> Loops;
  std::vector<int> InnermostOf; // Per block id; -1 = not in any loop.
  std::vector<std::pair<unsigned, unsigned>> Irreducible; // retreat edges

public:
  explicit LoopForest(Function &F);

  unsigned numLoops() const { return unsigned(Loops.size()); }
  const Loop &loop(unsigned Id) const { return Loops[Id]; }

  /// Innermost loop containing the block, or -1.
  int innermostLoop(unsigned BlockId) const { return InnermostOf[BlockId]; }

  unsigned loopDepth(unsigned BlockId) const {
    int L = InnermostOf[BlockId];
    return L < 0 ? 0 : Loops[unsigned(L)].Depth;
  }

  /// Retreating edges whose target does not dominate their source
  /// (irreducible control flow).
  const std::vector<std::pair<unsigned, unsigned>> &irreducibleEdges() const {
    return Irreducible;
  }
};

} // namespace depflow

#endif // DEPFLOW_GRAPH_LOOPS_H
