//===- workload/Generators.h - Synthetic program generators -----*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic workload generators. The original paper evaluated its
/// algorithms inside an unreleased Cornell compiler on FORTRAN inputs;
/// these generators are the repository's substitute: families of CFGs and
/// programs with controllable E (edges), V (variables), loop nesting, and
/// branching, all pure functions of a seed.
///
/// Program-producing generators guarantee the result verifies (unique
/// exit, everything reachable both ways) and every variable is defined at
/// entry before use (variables start at 0; see interp/Interpreter.h).
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_WORKLOAD_GENERATORS_H
#define DEPFLOW_WORKLOAD_GENERATORS_H

#include "ir/Module.h"
#include "structure/CycleEquivalence.h"
#include "support/RNG.h"

#include <cstdint>
#include <memory>

namespace depflow {

/// Knobs for the structured program generator.
struct GenOptions {
  std::uint64_t Seed = 1;
  unsigned NumVars = 6;        // Variables v0..v(NumVars-1).
  unsigned TargetStmts = 30;   // Approximate assignment count.
  unsigned MaxDepth = 4;       // Maximum if/while nesting.
  unsigned LoopPct = 25;       // Chance a construct is a while loop.
  unsigned IfPct = 35;         // Chance a construct is an if/if-else.
  unsigned ReadPct = 15;       // Chance an assignment is a read().
  unsigned ConstPct = 40;      // Chance an operand is a literal.
  bool EmitElse = true;        // Allow if without else when false.
  /// When nonzero, statements only touch a window of this many variables
  /// that slides across the variable space as the program progresses, and
  /// ret covers only the final window — short live ranges, the shape where
  /// the paper's sparse propagation pays off. 0 = uniform access.
  unsigned ClusterWindow = 0;
};

/// Generates a random *structured* program (seq/if/while), always reducible
/// and rich in SESE regions. Output verifies.
std::unique_ptr<Function> generateStructuredProgram(const GenOptions &Opts);

/// Generates a random, possibly irreducible CFG with gotos: a guaranteed
/// chain entry→…→exit plus \p ExtraEdgePct percent random conditional
/// branches. Blocks carry \p StmtsPerBlock random assignments over
/// \p NumVars variables. Output verifies.
std::unique_ptr<Function> generateRandomCFGProgram(std::uint64_t Seed,
                                                   unsigned NumBlocks,
                                                   unsigned ExtraEdgePct,
                                                   unsigned NumVars,
                                                   unsigned StmtsPerBlock);

/// K sequential if-then-else diamonds (many small SESE regions).
std::unique_ptr<Function> generateDiamondChain(unsigned K, unsigned NumVars,
                                               std::uint64_t Seed);

/// Nested while loops, \p Depth deep, with \p BodiesPerLevel sibling loops
/// at each level.
std::unique_ptr<Function> generateNestedLoops(unsigned Depth,
                                              unsigned BodiesPerLevel,
                                              unsigned NumVars,
                                              std::uint64_t Seed);

/// K repeat-until loops in sequence; each back edge is a critical edge
/// (switch source, merge destination), the shape the paper singles out in
/// Section 5.2.
std::unique_ptr<Function> generateRepeatUntilChain(unsigned K,
                                                   unsigned NumVars,
                                                   std::uint64_t Seed);

/// A "ladder": blocks B0..B(K-1) where Bi conditionally branches to both
/// B(i+1) and B(i+2) — an irreducible-looking mesh with few SESE regions.
std::unique_ptr<Function> generateLadder(unsigned K, unsigned NumVars,
                                         std::uint64_t Seed);

/// One function drawn from the six CFG families above (structured,
/// random-cfg, diamonds, nested-loops, repeat-until, ladder), with family
/// and parameters drawn from \p Rand — the fuzzer's program distribution,
/// shared here so modules, benches, and the fuzzer agree on what a
/// "typical" function looks like. \p FamilyOut (may be null) receives the
/// family index for reporting.
std::unique_ptr<Function> generateMixedProgram(RNG &Rand,
                                               unsigned *FamilyOut = nullptr);

/// Display name for a generateMixedProgram family index.
const char *mixedFamilyName(unsigned Family);

/// A module of \p NumFuncs mixed-family functions named f0..f(N-1), a pure
/// function of \p Seed — the whole-program workload for the parallel
/// pipeline driver (depflow-opt -j, bench_parallel).
std::unique_ptr<Module> generateModule(unsigned NumFuncs, std::uint64_t Seed);

/// A module of \p NumFuncs mixed-family functions linked by call sites:
/// fi calls only higher-indexed functions, so the call graph is a DAG
/// rooted at f0 (the entry). Callees carry 0..2 parameters, each mixed
/// into the body so argument values are live. The slicing differential
/// oracle's workload: calls, parameters, returns, and a shared read()
/// stream, with guaranteed termination whenever the bodies terminate.
std::unique_ptr<Module> generateCallModule(unsigned NumFuncs,
                                           std::uint64_t Seed);

/// A random strongly connected directed multigraph as an edge list
/// (a Hamiltonian-style random cycle plus \p ExtraEdges random edges),
/// for direct tests of the cycle-equivalence algorithms.
std::vector<UEdge> randomStronglyConnectedEdges(RNG &Rand, unsigned NumNodes,
                                                unsigned ExtraEdges);

} // namespace depflow

#endif // DEPFLOW_WORKLOAD_GENERATORS_H
