//===- workload/Generators.cpp - Synthetic program generators -------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "workload/Generators.h"

#include <algorithm>

using namespace depflow;

namespace {

/// Shared helpers for emitting random straight-line code.
class CodeEmitter {
public:
  Function &F;
  RNG &Rand;
  std::vector<VarId> Vars;
  unsigned ConstPct;
  unsigned ReadPct;
  // Sliding locality window (see GenOptions::ClusterWindow).
  unsigned Window = 0;
  unsigned WindowLo = 0;

  CodeEmitter(Function &F, RNG &Rand, unsigned NumVars, unsigned ConstPct,
              unsigned ReadPct)
      : F(F), Rand(Rand), ConstPct(ConstPct), ReadPct(ReadPct) {
    for (unsigned I = 0; I != NumVars; ++I)
      Vars.push_back(F.makeVar("v" + std::to_string(I)));
  }

  /// Slides the active window to cover variables around \p Progress (a
  /// fraction of the program already emitted, in per-mille).
  void setProgress(unsigned PerMille) {
    if (Window == 0 || Window >= Vars.size())
      return;
    WindowLo = unsigned((std::uint64_t(Vars.size() - Window) * PerMille) /
                        1000);
  }

  VarId randomVar() {
    if (Window == 0 || Window >= Vars.size())
      return Vars[Rand.nextBelow(Vars.size())];
    return Vars[WindowLo + Rand.nextBelow(Window)];
  }

  Operand randomOperand() {
    if (Rand.chance(ConstPct, 100))
      return Operand::imm(Rand.nextInRange(-4, 9));
    return Operand::var(randomVar());
  }

  void emitAssign(BasicBlock *BB) {
    VarId Def = randomVar();
    if (Rand.chance(ReadPct, 100)) {
      BB->appendRead(Def);
      return;
    }
    switch (Rand.nextBelow(3)) {
    case 0:
      BB->appendCopy(Def, randomOperand());
      break;
    case 1:
      BB->appendUnary(Def, Rand.chance(1, 2) ? UnOp::Neg : UnOp::Not,
                      randomOperand());
      break;
    default: {
      static const BinOp Ops[] = {BinOp::Add, BinOp::Sub, BinOp::Mul,
                                  BinOp::Div, BinOp::Eq,  BinOp::Lt,
                                  BinOp::And, BinOp::Or};
      BinOp Op = Ops[Rand.nextBelow(std::size(Ops))];
      BB->appendBinary(Def, Op, randomOperand(), randomOperand());
      break;
    }
    }
  }

  /// All variables as ret outputs (or just the active window when
  /// locality is on), so values are observable for the interpreter tests.
  void emitRet(BasicBlock *BB) {
    std::vector<Operand> Outs;
    if (Window != 0 && Window < Vars.size()) {
      for (unsigned I = 0; I != Window; ++I)
        Outs.push_back(Operand::var(Vars[WindowLo + I]));
    } else {
      for (VarId V : Vars)
        Outs.push_back(Operand::var(V));
    }
    BB->setRet(std::move(Outs));
  }
};

/// Recursive-descent structured program builder. Returns the block where
/// control continues after the construct.
class StructuredBuilder {
  CodeEmitter &C;
  const GenOptions &Opts;
  unsigned StmtsLeft;
  unsigned NextLabel = 0;

public:
  StructuredBuilder(CodeEmitter &C, const GenOptions &Opts)
      : C(C), Opts(Opts), StmtsLeft(Opts.TargetStmts) {}

  /// Emits top-level sequences until the statement budget is spent.
  BasicBlock *run(BasicBlock *Entry) {
    BasicBlock *Cur = Entry;
    while (StmtsLeft > 0) {
      C.setProgress(1000 - (StmtsLeft * 1000) / Opts.TargetStmts);
      Cur = emitSeq(Cur, 0);
    }
    return Cur;
  }

  BasicBlock *freshBlock(const char *Hint) {
    return C.F.makeBlock(std::string(Hint) + std::to_string(NextLabel++));
  }

  /// Emits a statement sequence starting in \p BB; returns the block that
  /// control falls out of.
  BasicBlock *emitSeq(BasicBlock *BB, unsigned Depth) {
    unsigned Items = 1 + unsigned(C.Rand.nextBelow(4));
    for (unsigned I = 0; I != Items && StmtsLeft > 0; ++I) {
      unsigned Roll = unsigned(C.Rand.nextBelow(100));
      if (Depth < Opts.MaxDepth && Roll < Opts.LoopPct && StmtsLeft > 2) {
        BB = emitWhile(BB, Depth + 1);
      } else if (Depth < Opts.MaxDepth && Roll < Opts.LoopPct + Opts.IfPct &&
                 StmtsLeft > 2) {
        BB = emitIf(BB, Depth + 1);
      } else {
        C.emitAssign(BB);
        --StmtsLeft;
      }
    }
    return BB;
  }

  BasicBlock *emitIf(BasicBlock *BB, unsigned Depth) {
    BasicBlock *Then = freshBlock("then");
    BasicBlock *Join = freshBlock("join");
    bool HasElse = Opts.EmitElse && C.Rand.chance(1, 2);
    BasicBlock *Else = HasElse ? freshBlock("els") : Join;
    BB->setCondBr(Operand::var(C.randomVar()), Then, Else);
    StmtsLeft -= std::min(StmtsLeft, 1u);
    BasicBlock *ThenEnd = emitSeq(Then, Depth);
    ThenEnd->setJump(Join);
    if (HasElse) {
      BasicBlock *ElseEnd = emitSeq(Else, Depth);
      ElseEnd->setJump(Join);
    }
    return Join;
  }

  BasicBlock *emitWhile(BasicBlock *BB, unsigned Depth) {
    BasicBlock *Header = freshBlock("head");
    BasicBlock *Body = freshBlock("body");
    BasicBlock *After = freshBlock("after");
    BB->setJump(Header);
    Header->setCondBr(Operand::var(C.randomVar()), Body, After);
    StmtsLeft -= std::min(StmtsLeft, 1u);
    BasicBlock *BodyEnd = emitSeq(Body, Depth);
    BodyEnd->setJump(Header);
    return After;
  }
};

} // namespace

std::unique_ptr<Function> depflow::generateStructuredProgram(
    const GenOptions &Opts) {
  auto F = std::make_unique<Function>("gen");
  RNG Rand(Opts.Seed);
  CodeEmitter C(*F, Rand, Opts.NumVars, Opts.ConstPct, Opts.ReadPct);
  C.Window = Opts.ClusterWindow;
  BasicBlock *Entry = F->makeBlock("entry");
  StructuredBuilder B(C, Opts);
  BasicBlock *Last = B.run(Entry);
  C.emitRet(Last);
  F->recomputePreds();
  return F;
}

std::unique_ptr<Function> depflow::generateRandomCFGProgram(
    std::uint64_t Seed, unsigned NumBlocks, unsigned ExtraEdgePct,
    unsigned NumVars, unsigned StmtsPerBlock) {
  assert(NumBlocks >= 2 && "need at least entry and exit");
  auto F = std::make_unique<Function>("rand");
  RNG Rand(Seed);
  CodeEmitter C(*F, Rand, NumVars, /*ConstPct=*/40, /*ReadPct=*/15);

  std::vector<BasicBlock *> Blocks;
  for (unsigned I = 0; I != NumBlocks; ++I)
    Blocks.push_back(F->makeBlock("b" + std::to_string(I)));

  for (unsigned I = 0; I != NumBlocks; ++I) {
    for (unsigned S = 0; S != StmtsPerBlock; ++S)
      C.emitAssign(Blocks[I]);
    if (I + 1 == NumBlocks) {
      C.emitRet(Blocks[I]);
      continue;
    }
    // Base chain edge keeps everything reachable in both directions; a
    // random second successor (never the entry, never a duplicate) makes
    // the block a switch and can create arbitrary, even irreducible, loops.
    BasicBlock *Next = Blocks[I + 1];
    if (NumBlocks > 3 && Rand.chance(ExtraEdgePct, 100)) {
      unsigned T = 1 + unsigned(Rand.nextBelow(NumBlocks - 1));
      if (Blocks[T] != Next && Blocks[T] != Blocks[I]) {
        Blocks[I]->setCondBr(Operand::var(C.randomVar()), Next, Blocks[T]);
        continue;
      }
    }
    Blocks[I]->setJump(Next);
  }
  F->recomputePreds();
  return F;
}

std::unique_ptr<Function> depflow::generateDiamondChain(unsigned K,
                                                        unsigned NumVars,
                                                        std::uint64_t Seed) {
  auto F = std::make_unique<Function>("diamonds");
  RNG Rand(Seed);
  CodeEmitter C(*F, Rand, NumVars, 40, 10);
  BasicBlock *Cur = F->makeBlock("entry");
  C.emitAssign(Cur);
  for (unsigned I = 0; I != K; ++I) {
    std::string N = std::to_string(I);
    BasicBlock *Then = F->makeBlock("t" + N);
    BasicBlock *Else = F->makeBlock("e" + N);
    BasicBlock *Join = F->makeBlock("j" + N);
    Cur->setCondBr(Operand::var(C.randomVar()), Then, Else);
    C.emitAssign(Then);
    C.emitAssign(Else);
    Then->setJump(Join);
    Else->setJump(Join);
    C.emitAssign(Join);
    Cur = Join;
  }
  C.emitRet(Cur);
  F->recomputePreds();
  return F;
}

std::unique_ptr<Function> depflow::generateNestedLoops(unsigned Depth,
                                                       unsigned BodiesPerLevel,
                                                       unsigned NumVars,
                                                       std::uint64_t Seed) {
  auto F = std::make_unique<Function>("loops");
  RNG Rand(Seed);
  CodeEmitter C(*F, Rand, NumVars, 40, 10);
  unsigned Label = 0;

  // Recursively: loop headers with BodiesPerLevel sequential nested loops.
  struct Emit {
    Function &F;
    CodeEmitter &C;
    unsigned &Label;
    unsigned BodiesPerLevel;

    BasicBlock *loops(BasicBlock *Cur, unsigned Depth) {
      if (Depth == 0) {
        C.emitAssign(Cur);
        return Cur;
      }
      for (unsigned I = 0; I != BodiesPerLevel; ++I) {
        std::string N = std::to_string(Label++);
        BasicBlock *Head = F.makeBlock("h" + N);
        BasicBlock *Body = F.makeBlock("b" + N);
        BasicBlock *After = F.makeBlock("a" + N);
        Cur->setJump(Head);
        Head->setCondBr(Operand::var(C.randomVar()), Body, After);
        BasicBlock *BodyEnd = loops(Body, Depth - 1);
        BodyEnd->setJump(Head);
        C.emitAssign(After);
        Cur = After;
      }
      return Cur;
    }
  };

  BasicBlock *Entry = F->makeBlock("entry");
  C.emitAssign(Entry);
  Emit E{*F, C, Label, BodiesPerLevel};
  BasicBlock *Last = E.loops(Entry, Depth);
  C.emitRet(Last);
  F->recomputePreds();
  return F;
}

std::unique_ptr<Function> depflow::generateRepeatUntilChain(
    unsigned K, unsigned NumVars, std::uint64_t Seed) {
  auto F = std::make_unique<Function>("repeat");
  RNG Rand(Seed);
  CodeEmitter C(*F, Rand, NumVars, 40, 10);
  BasicBlock *Cur = F->makeBlock("entry");
  C.emitAssign(Cur);
  for (unsigned I = 0; I != K; ++I) {
    std::string N = std::to_string(I);
    BasicBlock *Body = F->makeBlock("body" + N);
    BasicBlock *After = F->makeBlock("after" + N);
    Cur->setJump(Body);
    C.emitAssign(Body);
    // Back edge Body→Body leaves a switch and enters a merge: critical.
    Body->setCondBr(Operand::var(C.randomVar()), Body, After);
    C.emitAssign(After);
    Cur = After;
  }
  C.emitRet(Cur);
  F->recomputePreds();
  return F;
}

std::unique_ptr<Function> depflow::generateLadder(unsigned K, unsigned NumVars,
                                                  std::uint64_t Seed) {
  assert(K >= 3 && "ladder needs at least three rungs");
  auto F = std::make_unique<Function>("ladder");
  RNG Rand(Seed);
  CodeEmitter C(*F, Rand, NumVars, 40, 10);
  std::vector<BasicBlock *> Rungs;
  for (unsigned I = 0; I != K; ++I)
    Rungs.push_back(F->makeBlock("r" + std::to_string(I)));
  for (unsigned I = 0; I != K; ++I) {
    C.emitAssign(Rungs[I]);
    if (I + 2 < K)
      Rungs[I]->setCondBr(Operand::var(C.randomVar()), Rungs[I + 1],
                          Rungs[I + 2]);
    else if (I + 1 < K)
      Rungs[I]->setJump(Rungs[I + 1]);
    else
      C.emitRet(Rungs[I]);
  }
  F->recomputePreds();
  return F;
}

std::vector<UEdge> depflow::randomStronglyConnectedEdges(RNG &Rand,
                                                         unsigned NumNodes,
                                                         unsigned ExtraEdges) {
  assert(NumNodes >= 2 && "need at least two nodes");
  std::vector<unsigned> Perm(NumNodes);
  for (unsigned I = 0; I != NumNodes; ++I)
    Perm[I] = I;
  for (unsigned I = NumNodes; I-- > 1;)
    std::swap(Perm[I], Perm[Rand.nextBelow(I + 1)]);

  std::vector<UEdge> Edges;
  for (unsigned I = 0; I != NumNodes; ++I)
    Edges.push_back({Perm[I], Perm[(I + 1) % NumNodes]});
  for (unsigned I = 0; I != ExtraEdges; ++I) {
    unsigned A = unsigned(Rand.nextBelow(NumNodes));
    unsigned B = unsigned(Rand.nextBelow(NumNodes));
    if (A != B)
      Edges.push_back({A, B});
  }
  return Edges;
}

//===----------------------------------------------------------------------===//
// Mixed-family functions and modules
//===----------------------------------------------------------------------===//

static const char *const MixedFamilyNames[] = {
    "structured",   "random-cfg",   "diamonds",
    "nested-loops", "repeat-until", "ladder"};

const char *depflow::mixedFamilyName(unsigned Family) {
  assert(Family < 6 && "family index out of range");
  return MixedFamilyNames[Family];
}

std::unique_ptr<Function> depflow::generateMixedProgram(RNG &Rand,
                                                        unsigned *FamilyOut) {
  unsigned Family = unsigned(Rand.nextBelow(6));
  if (FamilyOut)
    *FamilyOut = Family;
  std::uint64_t Seed = Rand.next();
  unsigned Vars = 2 + unsigned(Rand.nextBelow(7));
  switch (Family) {
  case 0: {
    GenOptions G;
    G.Seed = Seed;
    G.NumVars = Vars;
    G.TargetStmts = 8 + unsigned(Rand.nextBelow(40));
    G.MaxDepth = 2 + unsigned(Rand.nextBelow(4));
    G.LoopPct = unsigned(Rand.nextBelow(40));
    G.IfPct = 20 + unsigned(Rand.nextBelow(40));
    G.ReadPct = 5 + unsigned(Rand.nextBelow(25));
    G.EmitElse = Rand.chance(1, 2);
    return generateStructuredProgram(G);
  }
  case 1:
    return generateRandomCFGProgram(Seed, 4 + unsigned(Rand.nextBelow(10)),
                                    20 + unsigned(Rand.nextBelow(40)), Vars,
                                    1 + unsigned(Rand.nextBelow(3)));
  case 2:
    return generateDiamondChain(1 + unsigned(Rand.nextBelow(5)), Vars, Seed);
  case 3:
    return generateNestedLoops(1 + unsigned(Rand.nextBelow(3)),
                               1 + unsigned(Rand.nextBelow(2)), Vars, Seed);
  case 4:
    return generateRepeatUntilChain(1 + unsigned(Rand.nextBelow(4)), Vars,
                                    Seed);
  default:
    return generateLadder(3 + unsigned(Rand.nextBelow(6)), Vars, Seed);
  }
}

std::unique_ptr<Module> depflow::generateModule(unsigned NumFuncs,
                                                std::uint64_t Seed) {
  RNG Rand(Seed);
  auto M = std::make_unique<Module>("m" + std::to_string(Seed));
  for (unsigned I = 0; I != NumFuncs; ++I) {
    std::unique_ptr<Function> F = generateMixedProgram(Rand);
    F->setName("f" + std::to_string(I));
    Status S = M->addFunction(std::move(F));
    assert(S.ok() && "generated names are unique");
    (void)S;
  }
  return M;
}

std::unique_ptr<Module> depflow::generateCallModule(unsigned NumFuncs,
                                                    std::uint64_t Seed) {
  assert(NumFuncs > 0 && "a call module needs at least the entry");
  RNG Rand(Seed);
  auto M = std::make_unique<Module>("cm" + std::to_string(Seed));
  std::vector<Function *> Fns;
  for (unsigned I = 0; I != NumFuncs; ++I) {
    std::unique_ptr<Function> F = generateMixedProgram(Rand);
    F->setName("f" + std::to_string(I));
    // Callees take 0..2 parameters. Generated bodies define every variable
    // before use, so a promoted variable would be dead on arrival; instead
    // each parameter is a fresh variable mixed into an existing one at the
    // end of the entry block, where it flows into the rest of the body.
    if (I != 0 && F->numVars() != 0) {
      unsigned NumParams = unsigned(Rand.nextBelow(3));
      for (unsigned P = 0; P != NumParams; ++P) {
        VarId PV = F->makeVar("p" + std::to_string(P));
        F->addParam(PV);
        VarId W = VarId(Rand.nextBelow(F->numVars() - 1 - P));
        F->entry()->appendBinary(W, BinOp::Add, Operand::var(W),
                                 Operand::var(PV));
      }
    }
    Fns.push_back(F.get());
    Status S = M->addFunction(std::move(F));
    assert(S.ok() && "generated names are unique");
    (void)S;
  }
  // Call sites: fi only ever calls fj with j > i, so the call graph is a
  // DAG rooted at f0 — every run from f0 terminates whenever the bodies
  // do, which keeps the slice oracle's halting filter cheap.
  for (unsigned I = 0; I + 1 < NumFuncs; ++I) {
    Function *F = Fns[I];
    unsigned NumCalls = 1 + unsigned(Rand.nextBelow(3));
    for (unsigned C = 0; C != NumCalls; ++C) {
      Function *Callee =
          Fns[I + 1 + unsigned(Rand.nextBelow(NumFuncs - I - 1))];
      std::vector<Operand> Args;
      for (std::size_t A = 0; A != Callee->params().size(); ++A)
        Args.push_back(Rand.chance(1, 3)
                           ? Operand::imm(Rand.nextInRange(-4, 9))
                           : Operand::var(VarId(Rand.nextBelow(F->numVars()))));
      VarId Def = VarId(Rand.nextBelow(F->numVars()));
      BasicBlock *BB = F->block(unsigned(Rand.nextBelow(F->numBlocks())));
      BB->appendCall(Def, Callee->name(), std::move(Args));
    }
  }
  return M;
}
