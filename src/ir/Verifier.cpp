//===- ir/Verifier.cpp - IR well-formedness checks ------------------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "support/BitVector.h"

#include <algorithm>

using namespace depflow;

/// Marks, into \p Seen, every block reachable from \p Root following
/// forward (or, if \p Backward, predecessor) edges.
static void markReachable(const Function &F, BasicBlock *Root, bool Backward,
                          BitVector &Seen) {
  std::vector<BasicBlock *> Stack{Root};
  Seen.set(Root->id());
  while (!Stack.empty()) {
    BasicBlock *BB = Stack.back();
    Stack.pop_back();
    const std::vector<BasicBlock *> Next =
        Backward ? BB->predecessors() : BB->successors();
    for (BasicBlock *N : Next) {
      if (!Seen.test(N->id())) {
        Seen.set(N->id());
        Stack.push_back(N);
      }
    }
  }
  (void)F;
}

std::vector<std::string> depflow::verifyFunction(Function &F) {
  std::vector<std::string> Errors;
  F.recomputePreds();

  if (F.numBlocks() == 0) {
    Errors.push_back("function has no blocks");
    return Errors;
  }

  BasicBlock *Exit = nullptr;
  for (const auto &BB : F.blocks()) {
    Instruction *Term = BB->terminator();
    if (!Term) {
      Errors.push_back("block '" + BB->label() + "' has no terminator");
      continue;
    }
    for (const auto &I : BB->instructions())
      if (I->isTerminator() && I.get() != Term)
        Errors.push_back("block '" + BB->label() +
                         "' has a terminator in mid-block");
    if (auto *C = dyn_cast<CondBrInst>(Term)) {
      if (C->trueTarget() == C->falseTarget())
        Errors.push_back("block '" + BB->label() +
                         "' has a conditional branch with identical targets");
    }
    if (isa<RetInst>(Term)) {
      if (Exit)
        Errors.push_back("multiple ret blocks: '" + Exit->label() + "' and '" +
                         BB->label() + "'");
      else
        Exit = BB.get();
    }
  }
  if (!Exit) {
    Errors.push_back("function has no ret block");
    return Errors;
  }

  if (!F.entry()->predecessors().empty())
    Errors.push_back("entry block '" + F.entry()->label() +
                     "' has predecessors");

  BitVector FromEntry(F.numBlocks()), ToExit(F.numBlocks());
  markReachable(F, F.entry(), /*Backward=*/false, FromEntry);
  markReachable(F, Exit, /*Backward=*/true, ToExit);
  for (const auto &BB : F.blocks()) {
    if (!FromEntry.test(BB->id()))
      Errors.push_back("block '" + BB->label() +
                       "' is unreachable from entry");
    if (!ToExit.test(BB->id()))
      Errors.push_back("block '" + BB->label() + "' cannot reach the exit");
  }

  // Phi structural checks: incoming blocks must be exactly the preds.
  for (const auto &BB : F.blocks()) {
    bool SawNonPhi = false;
    for (const auto &I : BB->instructions()) {
      auto *Phi = dyn_cast<PhiInst>(I.get());
      if (!Phi) {
        SawNonPhi = true;
        continue;
      }
      if (SawNonPhi)
        Errors.push_back("block '" + BB->label() +
                         "' has a phi after a non-phi instruction");
      std::vector<BasicBlock *> Incoming = Phi->blockRefs();
      std::vector<BasicBlock *> Preds = BB->predecessors();
      auto ById = [](BasicBlock *A, BasicBlock *B) {
        return A->id() < B->id();
      };
      std::sort(Incoming.begin(), Incoming.end(), ById);
      std::sort(Preds.begin(), Preds.end(), ById);
      if (Incoming != Preds)
        Errors.push_back("phi for '" + F.varName(Phi->def()) + "' in block '" +
                         BB->label() +
                         "' does not match the block's predecessors");
    }
  }
  return Errors;
}

bool depflow::isWellFormed(Function &F) { return verifyFunction(F).empty(); }
