//===- ir/Verifier.cpp - IR well-formedness checks ------------------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "support/BitVector.h"

#include <algorithm>

using namespace depflow;

/// Marks, into \p Seen, every block reachable from \p Root following
/// forward (or, if \p Backward, predecessor) edges.
static void markReachable(const Function &F, BasicBlock *Root, bool Backward,
                          BitVector &Seen) {
  std::vector<BasicBlock *> Stack{Root};
  Seen.set(Root->id());
  while (!Stack.empty()) {
    BasicBlock *BB = Stack.back();
    Stack.pop_back();
    const std::vector<BasicBlock *> Next =
        Backward ? BB->predecessors() : BB->successors();
    for (BasicBlock *N : Next) {
      if (!Seen.test(N->id())) {
        Seen.set(N->id());
        Stack.push_back(N);
      }
    }
  }
  (void)F;
}

std::vector<std::string> depflow::verifyFunction(Function &F) {
  std::vector<std::string> Errors;
  F.recomputePreds();

  if (F.numBlocks() == 0) {
    Errors.push_back("function has no blocks");
    return Errors;
  }

  BasicBlock *Exit = nullptr;
  for (const auto &BB : F.blocks()) {
    Instruction *Term = BB->terminator();
    if (!Term) {
      Errors.push_back("block '" + BB->label() + "' has no terminator");
      continue;
    }
    for (const auto &I : BB->instructions())
      if (I->isTerminator() && I.get() != Term)
        Errors.push_back("block '" + BB->label() +
                         "' has a terminator in mid-block");
    if (auto *C = dyn_cast<CondBrInst>(Term)) {
      if (C->trueTarget() == C->falseTarget())
        Errors.push_back("block '" + BB->label() +
                         "' has a conditional branch with identical targets");
    }
    if (isa<RetInst>(Term)) {
      if (Exit)
        Errors.push_back("multiple ret blocks: '" + Exit->label() + "' and '" +
                         BB->label() + "'");
      else
        Exit = BB.get();
    }
  }
  if (!Exit) {
    Errors.push_back("function has no ret block");
    return Errors;
  }

  if (!F.entry()->predecessors().empty())
    Errors.push_back("entry block '" + F.entry()->label() +
                     "' has predecessors");

  BitVector FromEntry(F.numBlocks()), ToExit(F.numBlocks());
  markReachable(F, F.entry(), /*Backward=*/false, FromEntry);
  markReachable(F, Exit, /*Backward=*/true, ToExit);
  for (const auto &BB : F.blocks()) {
    if (!FromEntry.test(BB->id()))
      Errors.push_back("block '" + BB->label() +
                       "' is unreachable from entry");
    if (!ToExit.test(BB->id()))
      Errors.push_back("block '" + BB->label() + "' cannot reach the exit");
  }

  // Phi structural checks: incoming blocks must be exactly the preds.
  for (const auto &BB : F.blocks()) {
    bool SawNonPhi = false;
    for (const auto &I : BB->instructions()) {
      auto *Phi = dyn_cast<PhiInst>(I.get());
      if (!Phi) {
        SawNonPhi = true;
        continue;
      }
      if (SawNonPhi)
        Errors.push_back("block '" + BB->label() +
                         "' has a phi after a non-phi instruction");
      std::vector<BasicBlock *> Incoming = Phi->blockRefs();
      std::vector<BasicBlock *> Preds = BB->predecessors();
      auto ById = [](BasicBlock *A, BasicBlock *B) {
        return A->id() < B->id();
      };
      std::sort(Incoming.begin(), Incoming.end(), ById);
      std::sort(Preds.begin(), Preds.end(), ById);
      if (Incoming != Preds)
        Errors.push_back("phi for '" + F.varName(Phi->def()) + "' in block '" +
                         BB->label() +
                         "' does not match the block's predecessors");
    }
  }
  return Errors;
}

bool depflow::isWellFormed(Function &F) { return verifyFunction(F).empty(); }

std::vector<std::string> depflow::verifyDefUseHygiene(Function &F) {
  std::vector<std::string> Warnings;
  const unsigned NumVars = F.numVars();
  if (NumVars == 0 || F.numBlocks() == 0)
    return Warnings;
  F.recomputePreds();

  // Which variables have any assignment at all, and which are parameters.
  BitVector HasDef(NumVars), IsParam(NumVars), IsUsed(NumVars);
  for (VarId P : F.params())
    IsParam.set(P);
  for (const auto &BB : F.blocks())
    for (const auto &I : BB->instructions()) {
      if (const auto *D = dyn_cast<DefInst>(I.get()))
        HasDef.set(D->def());
      for (const Operand &Op : I->operands())
        if (Op.isVar())
          IsUsed.set(Op.var());
    }

  for (VarId V = 0; V != NumVars; ++V)
    if (IsUsed.test(V) && !HasDef.test(V) && !IsParam.test(V))
      Warnings.push_back("variable '" + F.varName(V) +
                         "' is read but never assigned (reads the "
                         "implicit 0)");

  // Definitely-assigned dataflow: In[b] = intersection of Out[preds];
  // entry starts from the parameter set. Phi defs count at the block head;
  // phi incoming values are uses at the end of the incoming block.
  std::vector<BitVector> In(F.numBlocks()), Out(F.numBlocks());
  for (unsigned B = 0; B != F.numBlocks(); ++B) {
    In[B] = BitVector(NumVars, true);
    Out[B] = BitVector(NumVars, true);
  }
  In[F.entry()->id()] = IsParam;

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &BB : F.blocks()) {
      BitVector NewIn = In[BB->id()];
      if (BB.get() != F.entry()) {
        NewIn = BitVector(NumVars, true);
        for (BasicBlock *P : BB->predecessors())
          NewIn &= Out[P->id()];
      }
      BitVector NewOut = NewIn;
      for (const auto &I : BB->instructions())
        if (const auto *D = dyn_cast<DefInst>(I.get()))
          NewOut.set(D->def());
      if (NewIn != In[BB->id()] || NewOut != Out[BB->id()]) {
        In[BB->id()] = std::move(NewIn);
        Out[BB->id()] = std::move(NewOut);
        Changed = true;
      }
    }
  }

  for (const auto &BB : F.blocks()) {
    BitVector Defined = In[BB->id()];
    // Phi defs take effect at the head, before any non-phi use.
    for (const auto &I : BB->instructions()) {
      const auto *Phi = dyn_cast<PhiInst>(I.get());
      if (!Phi)
        break;
      for (unsigned K = 0, E = Phi->numIncoming(); K != E; ++K) {
        const Operand &Op = Phi->incomingValue(K);
        if (Op.isVar() && !Out[Phi->incomingBlock(K)->id()].test(Op.var()) &&
            (HasDef.test(Op.var()) || IsParam.test(Op.var())))
          Warnings.push_back("phi use of '" + F.varName(Op.var()) +
                             "' in block '" + BB->label() +
                             "' may arrive from '" +
                             Phi->incomingBlock(K)->label() +
                             "' before any assignment (reads the "
                             "implicit 0)");
      }
      Defined.set(Phi->def());
    }
    for (const auto &I : BB->instructions()) {
      if (isa<PhiInst>(I.get()))
        continue;
      for (const Operand &Op : I->operands())
        if (Op.isVar() && !Defined.test(Op.var()) &&
            (HasDef.test(Op.var()) || IsParam.test(Op.var())))
          Warnings.push_back("use of '" + F.varName(Op.var()) +
                             "' in block '" + BB->label() +
                             "' may execute before any assignment "
                             "(reads the implicit 0)");
      if (const auto *D = dyn_cast<DefInst>(I.get()))
        Defined.set(D->def());
    }
  }
  return Warnings;
}

std::vector<std::string> depflow::verifyModuleCalls(const Module &M) {
  std::vector<std::string> Errors;
  for (unsigned FI = 0, FE = M.numFunctions(); FI != FE; ++FI) {
    const Function *F = M.function(FI);
    bool HasPhi = false;
    std::vector<const CallInst *> Calls;
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->instructions()) {
        if (isa<PhiInst>(I.get()))
          HasPhi = true;
        else if (const auto *C = dyn_cast<CallInst>(I.get()))
          Calls.push_back(C);
      }
    if (HasPhi && !Calls.empty())
      Errors.push_back("function '" + F->name() +
                       "' mixes call and phi instructions; calls are a "
                       "base-IR construct and must be analyzed before SSA "
                       "separation");
    for (const CallInst *C : Calls) {
      const Function *Callee = M.lookup(C->callee());
      if (!Callee) {
        Errors.push_back("function '" + F->name() + "' calls unknown callee '" +
                         C->callee() + "'");
        continue;
      }
      if (Callee->params().size() != C->numArgs())
        Errors.push_back(
            "function '" + F->name() + "' calls '" + C->callee() + "' with " +
            std::to_string(C->numArgs()) + " argument(s), callee takes " +
            std::to_string(Callee->params().size()));
    }
  }
  return Errors;
}
