//===- ir/Transforms.cpp - Basic CFG transformations ----------------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "ir/Transforms.h"

using namespace depflow;

unsigned depflow::splitCriticalEdges(Function &F) {
  F.recomputePreds();
  struct Split {
    BasicBlock *From;
    BasicBlock *To;
    unsigned SuccIdx;
  };
  std::vector<Split> Pending;
  for (const auto &BB : F.blocks()) {
    if (!BB->isSwitch())
      continue;
    std::vector<BasicBlock *> Succs = BB->successors();
    for (unsigned SI = 0, E = unsigned(Succs.size()); SI != E; ++SI)
      if (Succs[SI]->numPredecessors() > 1)
        Pending.push_back({BB.get(), Succs[SI], SI});
  }

  for (const Split &S : Pending) {
    BasicBlock *Mid = F.makeBlock(S.From->label() + "." + S.To->label());
    Mid->setJump(S.To);
    auto *Br = cast<CondBrInst>(S.From->terminator());
    // Retarget exactly the SuccIdx side (both sides may point at S.To only
    // in unverified IR; verified IR has distinct targets).
    if (S.SuccIdx == 0) {
      auto NewBr = std::make_unique<CondBrInst>(Br->cond(), Mid,
                                                Br->falseTarget());
      S.From->replaceInstruction(unsigned(S.From->size() - 1),
                                 std::move(NewBr));
    } else {
      auto NewBr =
          std::make_unique<CondBrInst>(Br->cond(), Br->trueTarget(), Mid);
      S.From->replaceInstruction(unsigned(S.From->size() - 1),
                                 std::move(NewBr));
    }
    // Fix phis in the destination: values arriving from From now arrive
    // from Mid.
    for (const auto &I : S.To->instructions()) {
      if (auto *Phi = dyn_cast<PhiInst>(I.get()))
        Phi->replaceBlockRef(S.From, Mid);
      else
        break;
    }
  }
  F.recomputePreds();
  return unsigned(Pending.size());
}

unsigned depflow::separateComputation(Function &F) {
  F.recomputePreds();
  unsigned Added = 0;

  auto HasComputation = [](const BasicBlock &BB) {
    for (const auto &I : BB.instructions())
      if (!I->isTerminator())
        return true;
    return false;
  };

  // Snapshot: we append blocks while iterating.
  std::vector<BasicBlock *> Work;
  for (const auto &BB : F.blocks()) {
    for (const auto &I : BB->instructions())
      assert(!isa<PhiInst>(I.get()) &&
             "separateComputation requires phi-free IR");
    Work.push_back(BB.get());
  }

  // Phase 1: all join splits. Done before any branch split so that every
  // predecessor's terminator still holds the edge being retargeted.
  for (BasicBlock *BB : Work) {
    if (BB->numPredecessors() <= 1 || !HasComputation(*BB))
      continue;
    BasicBlock *M = F.makeBlock(BB->label() + ".merge");
    for (BasicBlock *P : BB->predecessors())
      P->terminator()->replaceBlockRef(BB, M);
    M->setJump(BB);
    ++Added;
  }

  // Phase 2: all branch splits (they only add single-pred blocks).
  for (BasicBlock *BB : Work) {
    if (!isa_and_present<CondBrInst>(BB->terminator()) ||
        !HasComputation(*BB))
      continue;
    BasicBlock *T = F.makeBlock(BB->label() + ".br");
    auto *Br = cast<CondBrInst>(BB->terminator());
    T->setCondBr(Br->cond(), Br->trueTarget(), Br->falseTarget());
    BB->clearTerminator();
    BB->setJump(T);
    ++Added;
  }
  F.recomputePreds();
  return Added;
}

unsigned depflow::canonicalizeBranches(Function &F) {
  unsigned Rewrites = 0;
  for (const auto &BB : F.blocks()) {
    auto *Br = dyn_cast_if_present<CondBrInst>(BB->terminator());
    if (!Br || Br->trueTarget() != Br->falseTarget())
      continue;
    BasicBlock *Target = Br->trueTarget();
    BB->replaceInstruction(unsigned(BB->size() - 1),
                           std::make_unique<JumpInst>(Target));
    ++Rewrites;
  }
  if (Rewrites)
    F.recomputePreds();
  return Rewrites;
}
