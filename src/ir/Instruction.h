//===- ir/Instruction.h - Instruction class hierarchy -----------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction hierarchy for depflow's small imperative IR. The paper's
/// "assignment statement nodes" map to the definition instructions here;
/// its switch and merge nodes correspond at the CFG level to conditional
/// branches and join blocks (see ir/BasicBlock.h).
///
/// Instructions:
///   definitions:  x = op   | x = -op | x = a <binop> b | x = read()
///                 | x = call f(ops...) | phi
///   terminators:  goto B   | if c goto T else F        | ret ops...
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_IR_INSTRUCTION_H
#define DEPFLOW_IR_INSTRUCTION_H

#include "ir/Operand.h"
#include "support/Casting.h"

#include <cstdint>
#include <string>
#include <vector>

namespace depflow {

class BasicBlock;

/// Unary operators.
enum class UnOp : std::uint8_t { Neg, Not };

/// Binary operators. Comparison/logical operators yield 0 or 1.
enum class BinOp : std::uint8_t {
  Add,
  Sub,
  Mul,
  Div, // Division by zero is defined to yield 0 (keeps evaluation total).
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And, // Logical: nonzero operands count as true.
  Or,
};

const char *binOpName(BinOp Op);
const char *unOpName(UnOp Op);

/// Evaluates \p Op on two concrete values (shared by the interpreter and
/// constant folding so they can never disagree).
std::int64_t evalBinOp(BinOp Op, std::int64_t A, std::int64_t B);
std::int64_t evalUnOp(UnOp Op, std::int64_t A);

/// Base class of all instructions.
///
/// Storage for operands and block references lives here so that generic
/// passes can walk every use without dispatching on the concrete kind.
class Instruction {
public:
  enum class Kind : std::uint8_t {
    // Definitions (have a destination variable).
    Copy,
    Unary,
    Binary,
    Read,
    Call,
    Phi,
    // Terminators.
    Jump,
    CondBr,
    Ret,
  };

private:
  Kind K;
  BasicBlock *Parent = nullptr;
  unsigned Line = 0; // 1-based source line (0 = synthesized, no source).

protected:
  std::vector<Operand> Ops;
  /// Jump/CondBr: successor targets. Phi: incoming predecessor blocks
  /// (parallel to Ops).
  std::vector<BasicBlock *> Blocks;

  explicit Instruction(Kind K) : K(K) {}

public:
  virtual ~Instruction() = default;
  Instruction(const Instruction &) = delete;
  Instruction &operator=(const Instruction &) = delete;

  Kind kind() const { return K; }
  BasicBlock *parent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }

  /// Source line the parser read this instruction from, or 0 when the
  /// instruction was synthesized by a pass. Slicing criteria
  /// (`--slice func:line`) resolve against this.
  unsigned line() const { return Line; }
  void setLine(unsigned L) { Line = L; }

  bool isTerminator() const { return K >= Kind::Jump; }
  bool isDefinition() const { return K <= Kind::Phi; }

  unsigned numOperands() const { return unsigned(Ops.size()); }
  const Operand &operand(unsigned Idx) const {
    assert(Idx < Ops.size() && "operand index out of range");
    return Ops[Idx];
  }
  void setOperand(unsigned Idx, Operand O) {
    assert(Idx < Ops.size() && "operand index out of range");
    Ops[Idx] = O;
  }
  const std::vector<Operand> &operands() const { return Ops; }

  const std::vector<BasicBlock *> &blockRefs() const { return Blocks; }
  void replaceBlockRef(BasicBlock *Old, BasicBlock *New) {
    for (BasicBlock *&B : Blocks)
      if (B == Old)
        B = New;
  }
};

/// An instruction that defines (assigns) a variable.
class DefInst : public Instruction {
  VarId Def;

protected:
  DefInst(Kind K, VarId Def) : Instruction(K), Def(Def) {}

public:
  VarId def() const { return Def; }
  void setDef(VarId V) { Def = V; }

  static bool classof(const Instruction *I) {
    return I->kind() <= Kind::Phi;
  }
};

/// x = y  or  x = 5
class CopyInst : public DefInst {
public:
  CopyInst(VarId Def, Operand Src) : DefInst(Kind::Copy, Def) {
    Ops.push_back(Src);
  }
  const Operand &src() const { return Ops[0]; }
  static bool classof(const Instruction *I) { return I->kind() == Kind::Copy; }
};

/// x = -y  or  x = !y
class UnaryInst : public DefInst {
  UnOp Op;

public:
  UnaryInst(VarId Def, UnOp Op, Operand Src) : DefInst(Kind::Unary, Def), Op(Op) {
    Ops.push_back(Src);
  }
  UnOp op() const { return Op; }
  const Operand &src() const { return Ops[0]; }
  static bool classof(const Instruction *I) { return I->kind() == Kind::Unary; }
};

/// x = a <op> b
class BinaryInst : public DefInst {
  BinOp Op;

public:
  BinaryInst(VarId Def, BinOp Op, Operand A, Operand B)
      : DefInst(Kind::Binary, Def), Op(Op) {
    Ops.push_back(A);
    Ops.push_back(B);
  }
  BinOp op() const { return Op; }
  const Operand &lhs() const { return Ops[0]; }
  const Operand &rhs() const { return Ops[1]; }
  static bool classof(const Instruction *I) {
    return I->kind() == Kind::Binary;
  }
};

/// x = read() — consumes the next external input value. Reads are the IR's
/// source of statically unknown values.
class ReadInst : public DefInst {
public:
  explicit ReadInst(VarId Def) : DefInst(Kind::Read, Def) {}
  static bool classof(const Instruction *I) { return I->kind() == Kind::Read; }
};

/// x = call f(a, b, ...) — invokes function `f` from the enclosing module
/// with the listed arguments; the call's value is the callee's first
/// returned operand (0 when the callee returns nothing, matching the IR's
/// implicit-zero philosophy). The callee is referenced *by name*: a lone
/// function can be parsed, printed, and cloned without its module, and
/// resolution (callee exists, arity matches) is checked at module level.
/// Calls also thread the shared input stream: a `read()` in the callee
/// consumes the same stream as the caller, which is why the SDG models an
/// io pseudo-state through call sites (docs/SDG.md).
class CallInst : public DefInst {
  std::string Callee;

public:
  CallInst(VarId Def, std::string Callee, std::vector<Operand> Args)
      : DefInst(Kind::Call, Def), Callee(std::move(Callee)) {
    Ops = std::move(Args);
  }
  const std::string &callee() const { return Callee; }
  unsigned numArgs() const { return numOperands(); }
  const Operand &arg(unsigned Idx) const { return operand(Idx); }
  static bool classof(const Instruction *I) { return I->kind() == Kind::Call; }
};

/// SSA phi: x = phi(B1: v1, B2: v2, ...). Only present after an SSA
/// construction pass; the base IR is not in SSA form.
class PhiInst : public DefInst {
public:
  explicit PhiInst(VarId Def) : DefInst(Kind::Phi, Def) {}

  unsigned numIncoming() const { return unsigned(Ops.size()); }
  void addIncoming(BasicBlock *Pred, Operand Value) {
    Blocks.push_back(Pred);
    Ops.push_back(Value);
  }
  BasicBlock *incomingBlock(unsigned Idx) const {
    assert(Idx < Blocks.size() && "phi incoming index out of range");
    return Blocks[Idx];
  }
  const Operand &incomingValue(unsigned Idx) const { return Ops[Idx]; }
  void setIncomingValue(unsigned Idx, Operand O) { Ops[Idx] = O; }

  static bool classof(const Instruction *I) { return I->kind() == Kind::Phi; }
};

/// goto B
class JumpInst : public Instruction {
public:
  explicit JumpInst(BasicBlock *Target) : Instruction(Kind::Jump) {
    Blocks.push_back(Target);
  }
  BasicBlock *target() const { return Blocks[0]; }
  static bool classof(const Instruction *I) { return I->kind() == Kind::Jump; }
};

/// if c goto T else F — the paper's "switch" node. Nonzero is true.
class CondBrInst : public Instruction {
public:
  CondBrInst(Operand Cond, BasicBlock *TrueTarget, BasicBlock *FalseTarget)
      : Instruction(Kind::CondBr) {
    Ops.push_back(Cond);
    Blocks.push_back(TrueTarget);
    Blocks.push_back(FalseTarget);
  }
  const Operand &cond() const { return Ops[0]; }
  BasicBlock *trueTarget() const { return Blocks[0]; }
  BasicBlock *falseTarget() const { return Blocks[1]; }
  static bool classof(const Instruction *I) {
    return I->kind() == Kind::CondBr;
  }
};

/// ret v1, v2, ... — terminates the unique exit block; the listed operands
/// are the program's observable outputs.
class RetInst : public Instruction {
public:
  explicit RetInst(std::vector<Operand> Outputs) : Instruction(Kind::Ret) {
    Ops = std::move(Outputs);
  }
  static bool classof(const Instruction *I) { return I->kind() == Kind::Ret; }
};

} // namespace depflow

#endif // DEPFLOW_IR_INSTRUCTION_H
