//===- ir/Printer.cpp - Textual IR printing -------------------------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include "support/GraphWriter.h"

using namespace depflow;

std::string depflow::printOperand(const Function &F, const Operand &Op) {
  if (Op.isImm())
    return std::to_string(Op.imm());
  if (Op.isVar())
    return F.varName(Op.var());
  return "<none>";
}

std::string depflow::printInstruction(const Function &F,
                                      const Instruction &I) {
  switch (I.kind()) {
  case Instruction::Kind::Copy: {
    const auto &C = *cast<CopyInst>(&I);
    return F.varName(C.def()) + " = " + printOperand(F, C.src());
  }
  case Instruction::Kind::Unary: {
    const auto &U = *cast<UnaryInst>(&I);
    return F.varName(U.def()) + " = " + unOpName(U.op()) + " " +
           printOperand(F, U.src());
  }
  case Instruction::Kind::Binary: {
    const auto &B = *cast<BinaryInst>(&I);
    return F.varName(B.def()) + " = " + printOperand(F, B.lhs()) + " " +
           binOpName(B.op()) + " " + printOperand(F, B.rhs());
  }
  case Instruction::Kind::Read: {
    const auto &R = *cast<ReadInst>(&I);
    return F.varName(R.def()) + " = read()";
  }
  case Instruction::Kind::Call: {
    const auto &C = *cast<CallInst>(&I);
    std::string S = F.varName(C.def()) + " = call " + C.callee() + "(";
    for (unsigned Idx = 0, E = C.numArgs(); Idx != E; ++Idx) {
      if (Idx)
        S += ", ";
      S += printOperand(F, C.arg(Idx));
    }
    return S + ")";
  }
  case Instruction::Kind::Phi: {
    const auto &P = *cast<PhiInst>(&I);
    std::string S = F.varName(P.def()) + " = phi(";
    for (unsigned Idx = 0, E = P.numIncoming(); Idx != E; ++Idx) {
      if (Idx)
        S += ", ";
      S += P.incomingBlock(Idx)->label() + ": " +
           printOperand(F, P.incomingValue(Idx));
    }
    return S + ")";
  }
  case Instruction::Kind::Jump:
    return "goto " + cast<JumpInst>(&I)->target()->label();
  case Instruction::Kind::CondBr: {
    const auto &C = *cast<CondBrInst>(&I);
    return "if " + printOperand(F, C.cond()) + " goto " +
           C.trueTarget()->label() + " else " + C.falseTarget()->label();
  }
  case Instruction::Kind::Ret: {
    std::string S = "ret";
    const auto &Ops = I.operands();
    for (unsigned Idx = 0, E = unsigned(Ops.size()); Idx != E; ++Idx)
      S += (Idx ? ", " : " ") + printOperand(F, Ops[Idx]);
    return S;
  }
  }
  depflow_unreachable("unknown instruction kind");
}

std::string depflow::printFunction(const Function &F) {
  std::string S = "func " + F.name() + "(";
  for (unsigned Idx = 0, E = unsigned(F.params().size()); Idx != E; ++Idx) {
    if (Idx)
      S += ", ";
    S += F.varName(F.params()[Idx]);
  }
  S += ") {\n";
  for (const auto &BB : F.blocks()) {
    S += BB->label() + ":\n";
    for (const auto &I : BB->instructions())
      S += "  " + printInstruction(F, *I) + "\n";
  }
  return S + "}\n";
}

std::string depflow::printModule(const Module &M) {
  std::string S;
  for (unsigned I = 0, E = M.numFunctions(); I != E; ++I) {
    if (I)
      S += "\n";
    S += printFunction(*M.function(I));
  }
  return S;
}

std::string depflow::printCFGDot(const Function &F) {
  GraphWriter GW("cfg");
  for (const auto &BB : F.blocks()) {
    std::string Body = BB->label() + ":";
    for (const auto &I : BB->instructions())
      Body += "\n" + printInstruction(F, *I);
    GW.node(BB->label(), Body, "shape=box");
  }
  for (const auto &BB : F.blocks())
    for (BasicBlock *S : BB->successors())
      GW.edge(BB->label(), S->label());
  return GW.str();
}
