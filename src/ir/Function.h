//===- ir/Function.h - Functions --------------------------------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A function owns its basic blocks and its variable namespace. The first
/// block is the CFG's `start`; the unique block terminated by `ret` is
/// `end` (Definition 1 of the paper). The verifier (ir/Verifier.h) enforces
/// the control-graph well-formedness conditions.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_IR_FUNCTION_H
#define DEPFLOW_IR_FUNCTION_H

#include "ir/BasicBlock.h"
#include "support/StringInterner.h"

#include <memory>
#include <string>
#include <vector>

namespace depflow {

class Function {
  std::string Name;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  StringInterner VarNames;
  std::vector<VarId> Params;

public:
  explicit Function(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  /// Renames the function. Must not be called on a function already owned
  /// by a Module (the module indexes functions by name).
  void setName(std::string NewName) { Name = std::move(NewName); }

  /// Creates a new block appended to the block list. The first block created
  /// becomes the entry.
  BasicBlock *makeBlock(std::string Label);

  /// Interns a variable name, returning its dense id.
  VarId makeVar(std::string_view VarName) { return VarNames.intern(VarName); }
  /// Creates a fresh variable with a unique name derived from \p Hint.
  VarId makeFreshVar(const std::string &Hint);

  unsigned numVars() const { return VarNames.size(); }
  const std::string &varName(VarId V) const { return VarNames.name(V); }
  int lookupVar(std::string_view VarName) const {
    return VarNames.lookup(VarName);
  }

  void addParam(VarId V) { Params.push_back(V); }
  const std::vector<VarId> &params() const { return Params; }

  unsigned numBlocks() const { return unsigned(Blocks.size()); }
  BasicBlock *block(unsigned Id) const {
    assert(Id < Blocks.size() && "block id out of range");
    return Blocks[Id].get();
  }
  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }

  BasicBlock *entry() const {
    return Blocks.empty() ? nullptr : Blocks.front().get();
  }

  /// Returns the unique exit block (the one terminated by ret), or null.
  BasicBlock *exit() const;

  /// Rebuilds every block's predecessor list from the successor lists.
  /// Must be called after any CFG mutation and before using predecessors().
  void recomputePreds();

  /// Erases every block whose id maps to false in \p Keep, renumbering the
  /// survivors densely. The caller must ensure no kept block's terminator
  /// references an erased block. Recomputes predecessors.
  void eraseBlocks(const std::vector<bool> &Keep);

  /// Total number of CFG edges (sum of successor counts).
  unsigned numEdges() const;

  /// Total number of instructions.
  unsigned numInstructions() const;
};

} // namespace depflow

#endif // DEPFLOW_IR_FUNCTION_H
