//===- ir/Expression.cpp - Syntactic expression identity ------------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "ir/Expression.h"

#include "ir/Printer.h"

using namespace depflow;

std::string depflow::printExpression(const Function &F, const Expression &E) {
  return printOperand(F, E.Lhs) + " " + binOpName(E.Op) + " " +
         printOperand(F, E.Rhs);
}
