//===- ir/Expression.h - Syntactic expression identity ----------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The identity of a binary expression such as `a + b`, independent of
/// which variable receives it. Anticipatability, availability, and partial
/// redundancy elimination (Section 5 of the paper) are all "per expression"
/// analyses; the interpreter also counts dynamic evaluations per expression
/// so tests can check that EPR never adds computations to any path.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_IR_EXPRESSION_H
#define DEPFLOW_IR_EXPRESSION_H

#include "ir/Instruction.h"

#include <optional>
#include <string>
#include <tuple>

namespace depflow {

class Function;

/// A syntactic binary expression: op, left operand, right operand.
struct Expression {
  BinOp Op{};
  Operand Lhs;
  Operand Rhs;

  bool operator==(const Expression &E) const {
    return Op == E.Op && Lhs == E.Lhs && Rhs == E.Rhs;
  }

  bool operator<(const Expression &E) const {
    auto Key = [](const Expression &X) {
      auto OpKey = [](const Operand &O) {
        return std::tuple(unsigned(O.kind()), O.isVar() ? std::int64_t(O.var())
                          : O.isImm()                   ? O.imm()
                                                        : 0);
      };
      return std::tuple(unsigned(X.Op), OpKey(X.Lhs), OpKey(X.Rhs));
    };
    return Key(*this) < Key(E);
  }

  /// Variables the expression reads (0, 1, or 2 entries, deduplicated).
  std::vector<VarId> variables() const {
    std::vector<VarId> Vs;
    if (Lhs.isVar())
      Vs.push_back(Lhs.var());
    if (Rhs.isVar() && !(Lhs.isVar() && Lhs.var() == Rhs.var()))
      Vs.push_back(Rhs.var());
    return Vs;
  }

  bool uses(VarId V) const {
    return (Lhs.isVar() && Lhs.var() == V) || (Rhs.isVar() && Rhs.var() == V);
  }
};

/// The expression computed by \p I, if it is a binary instruction.
inline std::optional<Expression> expressionOf(const Instruction &I) {
  if (const auto *B = dyn_cast<BinaryInst>(&I))
    return Expression{B->op(), B->lhs(), B->rhs()};
  return std::nullopt;
}

/// Renders e.g. "v0 + v1" (requires the owning function for names).
std::string printExpression(const Function &F, const Expression &E);

} // namespace depflow

#endif // DEPFLOW_IR_EXPRESSION_H
