//===- ir/Operand.h - Instruction operands ----------------------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An operand is either a reference to a program variable or an immediate
/// 64-bit integer constant. Variables are dense ids interned per function.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_IR_OPERAND_H
#define DEPFLOW_IR_OPERAND_H

#include <cassert>
#include <cstdint>

namespace depflow {

/// Dense per-function variable id.
using VarId = unsigned;

/// A value read by an instruction: a variable or an immediate constant.
class Operand {
public:
  enum class Kind : std::uint8_t { None, Var, Imm };

private:
  Kind K = Kind::None;
  VarId Var = 0;
  std::int64_t Imm = 0;

public:
  Operand() = default;

  static Operand var(VarId V) {
    Operand O;
    O.K = Kind::Var;
    O.Var = V;
    return O;
  }

  static Operand imm(std::int64_t I) {
    Operand O;
    O.K = Kind::Imm;
    O.Imm = I;
    return O;
  }

  Kind kind() const { return K; }
  bool isNone() const { return K == Kind::None; }
  bool isVar() const { return K == Kind::Var; }
  bool isImm() const { return K == Kind::Imm; }

  VarId var() const {
    assert(isVar() && "operand is not a variable");
    return Var;
  }

  std::int64_t imm() const {
    assert(isImm() && "operand is not an immediate");
    return Imm;
  }

  bool operator==(const Operand &RHS) const {
    if (K != RHS.K)
      return false;
    if (K == Kind::Var)
      return Var == RHS.Var;
    if (K == Kind::Imm)
      return Imm == RHS.Imm;
    return true;
  }
  bool operator!=(const Operand &RHS) const { return !(*this == RHS); }
};

} // namespace depflow

#endif // DEPFLOW_IR_OPERAND_H
