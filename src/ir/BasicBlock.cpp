//===- ir/BasicBlock.cpp - Basic block implementation ---------------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "ir/BasicBlock.h"

using namespace depflow;

Instruction *BasicBlock::insert(std::unique_ptr<Instruction> I) {
  assert(!I->isTerminator() && "use setTerminator for terminators");
  I->setParent(this);
  Instruction *Raw = I.get();
  if (terminator())
    Insts.insert(Insts.end() - 1, std::move(I));
  else
    Insts.push_back(std::move(I));
  return Raw;
}

Instruction *BasicBlock::setTerminator(std::unique_ptr<Instruction> I) {
  assert(I->isTerminator() && "setTerminator requires a terminator");
  assert(!terminator() && "block already has a terminator");
  I->setParent(this);
  Instruction *Raw = I.get();
  Insts.push_back(std::move(I));
  return Raw;
}

void BasicBlock::clearTerminator() {
  if (terminator())
    Insts.pop_back();
}

void BasicBlock::removeInstruction(unsigned Idx) {
  assert(Idx < Insts.size() && "instruction index out of range");
  Insts.erase(Insts.begin() + Idx);
}

void BasicBlock::replaceInstruction(unsigned Idx,
                                    std::unique_ptr<Instruction> NewInst) {
  assert(Idx < Insts.size() && "instruction index out of range");
  NewInst->setParent(this);
  Insts[Idx] = std::move(NewInst);
}

Instruction *BasicBlock::insertAt(unsigned Idx,
                                  std::unique_ptr<Instruction> I) {
  assert(Idx <= Insts.size() && "insertion index out of range");
  I->setParent(this);
  Instruction *Raw = I.get();
  Insts.insert(Insts.begin() + Idx, std::move(I));
  return Raw;
}

int BasicBlock::indexOf(const Instruction *I) const {
  for (unsigned Idx = 0, E = unsigned(Insts.size()); Idx != E; ++Idx)
    if (Insts[Idx].get() == I)
      return int(Idx);
  return -1;
}

CopyInst *BasicBlock::appendCopy(VarId Def, Operand Src) {
  return static_cast<CopyInst *>(insert(std::make_unique<CopyInst>(Def, Src)));
}

UnaryInst *BasicBlock::appendUnary(VarId Def, UnOp Op, Operand Src) {
  return static_cast<UnaryInst *>(
      insert(std::make_unique<UnaryInst>(Def, Op, Src)));
}

BinaryInst *BasicBlock::appendBinary(VarId Def, BinOp Op, Operand A,
                                     Operand B) {
  return static_cast<BinaryInst *>(
      insert(std::make_unique<BinaryInst>(Def, Op, A, B)));
}

ReadInst *BasicBlock::appendRead(VarId Def) {
  return static_cast<ReadInst *>(insert(std::make_unique<ReadInst>(Def)));
}

CallInst *BasicBlock::appendCall(VarId Def, std::string Callee,
                                 std::vector<Operand> Args) {
  return static_cast<CallInst *>(insert(
      std::make_unique<CallInst>(Def, std::move(Callee), std::move(Args))));
}

PhiInst *BasicBlock::appendPhi(VarId Def) {
  auto Phi = std::make_unique<PhiInst>(Def);
  Phi->setParent(this);
  PhiInst *Raw = Phi.get();
  // Phis live at the head of the block, before any non-phi instruction.
  unsigned Idx = 0;
  while (Idx < Insts.size() && isa<PhiInst>(Insts[Idx].get()))
    ++Idx;
  Insts.insert(Insts.begin() + Idx, std::move(Phi));
  return Raw;
}

JumpInst *BasicBlock::setJump(BasicBlock *Target) {
  return static_cast<JumpInst *>(
      setTerminator(std::make_unique<JumpInst>(Target)));
}

CondBrInst *BasicBlock::setCondBr(Operand Cond, BasicBlock *TrueTarget,
                                  BasicBlock *FalseTarget) {
  return static_cast<CondBrInst *>(setTerminator(
      std::make_unique<CondBrInst>(Cond, TrueTarget, FalseTarget)));
}

RetInst *BasicBlock::setRet(std::vector<Operand> Outputs) {
  return static_cast<RetInst *>(
      setTerminator(std::make_unique<RetInst>(std::move(Outputs))));
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  Instruction *Term = terminator();
  if (!Term)
    return {};
  if (auto *J = dyn_cast<JumpInst>(Term))
    return {J->target()};
  if (auto *C = dyn_cast<CondBrInst>(Term))
    return {C->trueTarget(), C->falseTarget()};
  return {};
}

unsigned BasicBlock::numSuccessors() const {
  Instruction *Term = terminator();
  if (!Term)
    return 0;
  if (isa<JumpInst>(Term))
    return 1;
  if (isa<CondBrInst>(Term))
    return 2;
  return 0;
}
