//===- ir/Instruction.cpp - Instruction implementation --------------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "ir/Instruction.h"

using namespace depflow;

const char *depflow::binOpName(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "+";
  case BinOp::Sub:
    return "-";
  case BinOp::Mul:
    return "*";
  case BinOp::Div:
    return "/";
  case BinOp::Eq:
    return "==";
  case BinOp::Ne:
    return "!=";
  case BinOp::Lt:
    return "<";
  case BinOp::Le:
    return "<=";
  case BinOp::Gt:
    return ">";
  case BinOp::Ge:
    return ">=";
  case BinOp::And:
    return "&&";
  case BinOp::Or:
    return "||";
  }
  depflow_unreachable("unknown binary operator");
}

const char *depflow::unOpName(UnOp Op) {
  switch (Op) {
  case UnOp::Neg:
    return "-";
  case UnOp::Not:
    return "!";
  }
  depflow_unreachable("unknown unary operator");
}

std::int64_t depflow::evalBinOp(BinOp Op, std::int64_t A, std::int64_t B) {
  switch (Op) {
  case BinOp::Add:
    return std::int64_t(std::uint64_t(A) + std::uint64_t(B));
  case BinOp::Sub:
    return std::int64_t(std::uint64_t(A) - std::uint64_t(B));
  case BinOp::Mul:
    return std::int64_t(std::uint64_t(A) * std::uint64_t(B));
  case BinOp::Div:
    // Division is total: x/0 == 0, and INT_MIN/-1 wraps to INT_MIN.
    if (B == 0)
      return 0;
    if (A == INT64_MIN && B == -1)
      return INT64_MIN;
    return A / B;
  case BinOp::Eq:
    return A == B;
  case BinOp::Ne:
    return A != B;
  case BinOp::Lt:
    return A < B;
  case BinOp::Le:
    return A <= B;
  case BinOp::Gt:
    return A > B;
  case BinOp::Ge:
    return A >= B;
  case BinOp::And:
    return (A != 0) && (B != 0);
  case BinOp::Or:
    return (A != 0) || (B != 0);
  }
  depflow_unreachable("unknown binary operator");
}

std::int64_t depflow::evalUnOp(UnOp Op, std::int64_t A) {
  switch (Op) {
  case UnOp::Neg:
    return std::int64_t(-std::uint64_t(A));
  case UnOp::Not:
    return A == 0;
  }
  depflow_unreachable("unknown unary operator");
}
