//===- ir/Printer.h - Textual IR printing -----------------------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints functions in the textual syntax accepted by ir/Parser.h, so that
/// print(parse(S)) round-trips.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_IR_PRINTER_H
#define DEPFLOW_IR_PRINTER_H

#include "ir/Module.h"

#include <string>

namespace depflow {

/// Renders \p Op in source syntax (a variable name or integer literal).
std::string printOperand(const Function &F, const Operand &Op);

/// Renders a single instruction (without trailing newline).
std::string printInstruction(const Function &F, const Instruction &I);

/// Renders the whole function.
std::string printFunction(const Function &F);

/// Renders every function in textual order, separated by blank lines. A
/// one-function module prints exactly like printFunction, so depflow-opt's
/// output is unchanged for single-function inputs.
std::string printModule(const Module &M);

/// Renders the CFG in GraphViz form: one box per block with its
/// instructions, one edge per successor (depflow-opt's --dot-cfg and the
/// pipeline's --dot-after-all).
std::string printCFGDot(const Function &F);

} // namespace depflow

#endif // DEPFLOW_IR_PRINTER_H
