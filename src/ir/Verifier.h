//===- ir/Verifier.h - IR well-formedness checks ----------------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Enforces Definition 1 of the paper (a proper control flow graph) plus IR
/// structural sanity:
///   * every block ends in exactly one terminator;
///   * exactly one block ends in `ret` (the CFG's `end`);
///   * the entry has no predecessors; `end` has no successors;
///   * every block is reachable from entry and reaches `end`;
///   * a conditional branch has two distinct targets (a degenerate branch
///     must be canonicalized to a jump);
///   * phi incoming blocks exactly match the block's predecessors.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_IR_VERIFIER_H
#define DEPFLOW_IR_VERIFIER_H

#include "ir/Module.h"

#include <string>
#include <vector>

namespace depflow {

/// Returns all well-formedness violations (empty means the function is a
/// valid CFG in the paper's sense). Requires predecessors to be current;
/// recomputes them itself for safety.
std::vector<std::string> verifyFunction(Function &F);

/// Convenience: true iff verifyFunction reports no problems.
bool isWellFormed(Function &F);

/// Def-use hygiene checks, reported separately from verifyFunction because
/// the IR gives every variable an implicit 0 at entry, so both conditions
/// are legal — but in hand-written programs they usually indicate a typo:
///   * a variable that is read somewhere but never assigned by any
///     instruction and is not a parameter;
///   * a use that some entry path reaches before any assignment
///     (a "maybe reads the implicit 0" use), found by intersecting
///     definitely-assigned sets over predecessors.
/// Drivers print these as warnings by default and may escalate them to
/// errors under a strict mode. Requires \p F to pass verifyFunction.
std::vector<std::string> verifyDefUseHygiene(Function &F);

/// Module-level call invariants (the parser enforces the same rules on
/// textual input; this covers programmatically built or transformed
/// modules):
///   * every `call` names a function that exists in the module;
///   * the argument count matches the callee's parameter count;
///   * a function containing calls contains no phis — calls are a base-IR
///     construct and interprocedural analysis (src/sdg) runs before SSA
///     separation, so SSA-form functions must be call-free.
std::vector<std::string> verifyModuleCalls(const Module &M);

} // namespace depflow

#endif // DEPFLOW_IR_VERIFIER_H
