//===- ir/Parser.cpp - Textual IR parser ----------------------------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <unordered_map>
#include <vector>

using namespace depflow;

namespace {

enum class TokKind : std::uint8_t {
  Ident,
  Int,
  Punct, // Single string for multi-char operators too.
  End,
};

struct Token {
  TokKind Kind;
  std::string Text;
  std::int64_t IntValue = 0;
  unsigned Line = 0;
};

/// A whole-input tokenizer; the parser then works on the token vector, which
/// makes the label pre-scan (to fix block creation order) trivial.
class Lexer {
  std::string_view Src;
  std::size_t Pos = 0;
  unsigned Line = 1;
  unsigned ErrLine = 0;

public:
  explicit Lexer(std::string_view Src) : Src(Src) {}

  unsigned errorLine() const { return ErrLine; }

  /// Tokenizes the whole input; returns false (with \p Error set) on a bad
  /// character.
  bool run(std::vector<Token> &Out, std::string &Error) {
    while (true) {
      skipWhitespaceAndComments();
      if (Pos >= Src.size())
        break;
      char C = Src[Pos];
      if (isIdentStart(C)) {
        std::size_t Begin = Pos;
        while (Pos < Src.size() && isIdentChar(Src[Pos]))
          ++Pos;
        Out.push_back({TokKind::Ident,
                       std::string(Src.substr(Begin, Pos - Begin)), 0, Line});
        continue;
      }
      if (C >= '0' && C <= '9') {
        if (!lexInt(Out, Error, /*Negative=*/false))
          return false;
        continue;
      }
      if (C == '-' && Pos + 1 < Src.size() && Src[Pos + 1] >= '0' &&
          Src[Pos + 1] <= '9') {
        ++Pos;
        if (!lexInt(Out, Error, /*Negative=*/true))
          return false;
        continue;
      }
      if (!lexPunct(Out, Error))
        return false;
    }
    Out.push_back({TokKind::End, "", 0, Line});
    return true;
  }

private:
  static bool isIdentStart(char C) {
    return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_' ||
           C == '.';
  }
  static bool isIdentChar(char C) {
    return isIdentStart(C) || (C >= '0' && C <= '9');
  }

  void skipWhitespaceAndComments() {
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
      } else if (C == ' ' || C == '\t' || C == '\r') {
        ++Pos;
      } else if (C == '#') {
        while (Pos < Src.size() && Src[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  bool lexInt(std::vector<Token> &Out, std::string &Error, bool Negative) {
    std::uint64_t Value = 0;
    std::size_t Begin = Pos;
    while (Pos < Src.size() && Src[Pos] >= '0' && Src[Pos] <= '9') {
      Value = Value * 10 + std::uint64_t(Src[Pos] - '0');
      ++Pos;
    }
    if (Pos - Begin > 19) {
      Error = "line " + std::to_string(Line) + ": integer literal too large";
      ErrLine = Line;
      return false;
    }
    std::int64_t Signed =
        Negative ? std::int64_t(-Value) : std::int64_t(Value);
    Out.push_back({TokKind::Int, "", Signed, Line});
    return true;
  }

  bool lexPunct(std::vector<Token> &Out, std::string &Error) {
    static const char *TwoChar[] = {"==", "!=", "<=", ">=", "&&", "||"};
    for (const char *Op : TwoChar) {
      if (Src.substr(Pos, 2) == Op) {
        Out.push_back({TokKind::Punct, Op, 0, Line});
        Pos += 2;
        return true;
      }
    }
    char C = Src[Pos];
    static const char OneChar[] = "(){}:,=+-*/<>!";
    for (char Op : OneChar) {
      if (C == Op) {
        Out.push_back({TokKind::Punct, std::string(1, C), 0, Line});
        ++Pos;
        return true;
      }
    }
    Error = "line " + std::to_string(Line) + ": unexpected character '" +
            std::string(1, C) + "'";
    ErrLine = Line;
    return false;
  }
};

class Parser {
  std::vector<Token> Toks;
  std::size_t Pos = 0;
  std::unique_ptr<Function> Fn;
  std::unordered_map<std::string, BasicBlock *> BlockOf;
  std::string Error;
  unsigned ErrorLine = 0;
  unsigned FnNameLine = 0; // Line of the current function's name token.

public:
  ParseResult run(std::string_view Source) {
    Lexer Lex(Source);
    if (!Lex.run(Toks, Error))
      return {nullptr, Error, Lex.errorLine()};
    if (!parseFunctionBody())
      return {nullptr, Error, ErrorLine};
    Fn->recomputePreds();
    return {std::move(Fn), "", 0};
  }

  ParseModuleResult runModule(std::string_view Source) {
    Lexer Lex(Source);
    if (!Lex.run(Toks, Error))
      return {nullptr, Error, Lex.errorLine()};
    auto M = std::make_unique<Module>();
    // An input with no functions at all is rejected the same way a
    // truncated one is — the empty module is never produced.
    do {
      // Per-function parser state: the block namespace is function-local.
      Fn.reset();
      BlockOf.clear();
      if (!parseFunctionBody())
        return {nullptr, Error, ErrorLine};
      Fn->recomputePreds();
      unsigned NameLine = FnNameLine;
      std::string FnName = Fn->name();
      if (!M->addFunction(std::move(Fn)).ok()) {
        failAt(NameLine, "duplicate function '" + FnName + "'");
        return {nullptr, Error, ErrorLine};
      }
    } while (cur().Kind != TokKind::End);
    if (!resolveCalls(*M))
      return {nullptr, Error, ErrorLine};
    return {std::move(M), "", 0};
  }

private:
  /// Callee references are by name and function-local parsing cannot see
  /// the rest of the module, so resolution (callee exists, arity matches)
  /// runs once after every function has been parsed. Single-function
  /// parseFunction() intentionally skips this: a lone function with calls
  /// round-trips through print->parse without its module.
  bool resolveCalls(const Module &M) {
    for (unsigned FI = 0, FE = M.numFunctions(); FI != FE; ++FI) {
      const Function *F = M.function(FI);
      for (const auto &BB : F->blocks())
        for (const auto &I : BB->instructions()) {
          const auto *C = dyn_cast<CallInst>(I.get());
          if (!C)
            continue;
          const Function *Callee = M.lookup(C->callee());
          if (!Callee)
            return failAt(C->line(), "unknown callee '" + C->callee() +
                                         "' in call from '" + F->name() +
                                         "'");
          if (Callee->params().size() != C->numArgs())
            return failAt(C->line(),
                          "arity mismatch in call to '" + C->callee() +
                              "': " + std::to_string(C->numArgs()) +
                              " argument(s) passed, callee takes " +
                              std::to_string(Callee->params().size()));
        }
    }
    return true;
  }

  const Token &cur() const { return Toks[Pos]; }
  void advance() {
    if (Pos + 1 < Toks.size())
      ++Pos;
  }

  bool fail(const std::string &Msg) { return failAt(cur().Line, Msg); }

  /// For diagnostics about an already-consumed token (an unknown label),
  /// where cur() may sit on the next line already.
  bool failAt(unsigned Line, const std::string &Msg) {
    ErrorLine = Line;
    Error = "line " + std::to_string(Line) + ": " + Msg;
    return false;
  }

  bool isPunct(const char *P) const {
    return cur().Kind == TokKind::Punct && cur().Text == P;
  }
  bool isIdent(const char *S) const {
    return cur().Kind == TokKind::Ident && cur().Text == S;
  }

  bool expectPunct(const char *P) {
    if (!isPunct(P))
      return fail(std::string("expected '") + P + "'");
    advance();
    return true;
  }

  bool expectIdent(std::string &Out) {
    if (cur().Kind != TokKind::Ident)
      return fail("expected identifier");
    Out = cur().Text;
    advance();
    return true;
  }

  /// Labels are declared as `IDENT ':'` at paren depth 0 inside the braces;
  /// pre-creating them in textual order makes the first textual block the
  /// entry regardless of forward references.
  void preScanLabels(std::size_t BodyBegin) {
    int Depth = 0;
    for (std::size_t I = BodyBegin; I + 1 < Toks.size(); ++I) {
      const Token &T = Toks[I];
      if (T.Kind == TokKind::Punct) {
        if (T.Text == "(")
          ++Depth;
        else if (T.Text == ")")
          --Depth;
        else if (T.Text == "}")
          break;
      }
      if (Depth == 0 && T.Kind == TokKind::Ident &&
          Toks[I + 1].Kind == TokKind::Punct && Toks[I + 1].Text == ":" &&
          !BlockOf.count(T.Text))
        BlockOf[T.Text] = Fn->makeBlock(T.Text);
    }
  }

  BasicBlock *lookupBlock(const std::string &Label) {
    auto It = BlockOf.find(Label);
    return It == BlockOf.end() ? nullptr : It->second;
  }

  bool parseFunctionBody() {
    if (!isIdent("func"))
      return fail("expected 'func'");
    advance();
    FnNameLine = cur().Line;
    std::string Name;
    if (!expectIdent(Name))
      return false;
    Fn = std::make_unique<Function>(Name);
    if (!expectPunct("("))
      return false;
    if (!isPunct(")")) {
      while (true) {
        std::string Param;
        if (!expectIdent(Param))
          return false;
        Fn->addParam(Fn->makeVar(Param));
        if (isPunct(",")) {
          advance();
          continue;
        }
        break;
      }
    }
    if (!expectPunct(")") || !expectPunct("{"))
      return false;

    preScanLabels(Pos);
    if (BlockOf.empty())
      return fail("function has no blocks");

    BasicBlock *Current = nullptr;
    std::unordered_map<std::string, bool> LabelSeen;
    while (!isPunct("}")) {
      if (cur().Kind == TokKind::End)
        return fail("unexpected end of input; missing '}'");
      // Label?
      if (cur().Kind == TokKind::Ident && Pos + 1 < Toks.size() &&
          Toks[Pos + 1].Kind == TokKind::Punct && Toks[Pos + 1].Text == ":") {
        if (LabelSeen[cur().Text])
          return fail("duplicate label '" + cur().Text + "'");
        LabelSeen[cur().Text] = true;
        Current = lookupBlock(cur().Text);
        assert(Current && "label was pre-scanned");
        advance();
        advance();
        continue;
      }
      if (!Current)
        return fail("instruction before any label");
      if (!parseInstruction(Current))
        return false;
    }
    advance(); // '}'
    return true;
  }

  bool parseOperand(Operand &Out) {
    if (cur().Kind == TokKind::Int) {
      Out = Operand::imm(cur().IntValue);
      advance();
      return true;
    }
    if (cur().Kind == TokKind::Ident) {
      Out = Operand::var(Fn->makeVar(cur().Text));
      advance();
      return true;
    }
    return fail("expected operand (integer or variable)");
  }

  std::optional<BinOp> currentBinOp() const {
    if (cur().Kind != TokKind::Punct)
      return std::nullopt;
    const std::string &T = cur().Text;
    if (T == "+")
      return BinOp::Add;
    if (T == "-")
      return BinOp::Sub;
    if (T == "*")
      return BinOp::Mul;
    if (T == "/")
      return BinOp::Div;
    if (T == "==")
      return BinOp::Eq;
    if (T == "!=")
      return BinOp::Ne;
    if (T == "<")
      return BinOp::Lt;
    if (T == "<=")
      return BinOp::Le;
    if (T == ">")
      return BinOp::Gt;
    if (T == ">=")
      return BinOp::Ge;
    if (T == "&&")
      return BinOp::And;
    if (T == "||")
      return BinOp::Or;
    return std::nullopt;
  }

  bool parseInstruction(BasicBlock *BB) {
    if (BB->terminator())
      return fail("instruction after terminator in block '" + BB->label() +
                  "'");
    // Every instruction remembers the line its first token sits on;
    // `--slice func:line` criteria resolve against this.
    const unsigned InstLine = cur().Line;
    if (isIdent("goto")) {
      advance();
      std::string Label;
      unsigned LabelLine = cur().Line;
      if (!expectIdent(Label))
        return false;
      BasicBlock *Target = lookupBlock(Label);
      if (!Target)
        return failAt(LabelLine, "unknown label '" + Label + "'");
      BB->setJump(Target)->setLine(InstLine);
      return true;
    }
    if (isIdent("if")) {
      advance();
      Operand Cond;
      if (!parseOperand(Cond))
        return false;
      if (!isIdent("goto"))
        return fail("expected 'goto' in conditional branch");
      advance();
      std::string TrueLabel, FalseLabel;
      unsigned TrueLine = cur().Line;
      if (!expectIdent(TrueLabel))
        return false;
      if (!isIdent("else"))
        return fail("expected 'else' in conditional branch");
      advance();
      unsigned FalseLine = cur().Line;
      if (!expectIdent(FalseLabel))
        return false;
      BasicBlock *T = lookupBlock(TrueLabel);
      BasicBlock *E = lookupBlock(FalseLabel);
      if (!T)
        return failAt(TrueLine, "unknown label '" + TrueLabel + "'");
      if (!E)
        return failAt(FalseLine, "unknown label '" + FalseLabel + "'");
      BB->setCondBr(Cond, T, E)->setLine(InstLine);
      return true;
    }
    if (isIdent("ret")) {
      advance();
      std::vector<Operand> Outputs;
      // Outputs are optional; they end at the next label/instr/'}'. Since
      // operands are single tokens, parse a comma-separated list greedily.
      if (cur().Kind == TokKind::Int ||
          (cur().Kind == TokKind::Ident &&
           !(Pos + 1 < Toks.size() && Toks[Pos + 1].Text == ":"))) {
        while (true) {
          Operand O;
          if (!parseOperand(O))
            return false;
          Outputs.push_back(O);
          if (isPunct(",")) {
            advance();
            continue;
          }
          break;
        }
      }
      BB->setRet(std::move(Outputs))->setLine(InstLine);
      return true;
    }
    // Definition: IDENT '=' ...
    std::string DefName;
    if (!expectIdent(DefName))
      return false;
    if (!expectPunct("="))
      return false;
    VarId Def = Fn->makeVar(DefName);

    if (isIdent("read")) {
      advance();
      if (!expectPunct("(") || !expectPunct(")"))
        return false;
      BB->appendRead(Def)->setLine(InstLine);
      return true;
    }
    if (isIdent("call")) {
      advance();
      std::string Callee;
      if (!expectIdent(Callee))
        return false;
      if (!expectPunct("("))
        return false;
      std::vector<Operand> Args;
      if (!isPunct(")")) {
        while (true) {
          Operand O;
          if (!parseOperand(O))
            return false;
          Args.push_back(O);
          if (isPunct(",")) {
            advance();
            continue;
          }
          break;
        }
      }
      if (!expectPunct(")"))
        return false;
      BB->appendCall(Def, std::move(Callee), std::move(Args))
          ->setLine(InstLine);
      return true;
    }
    if (isIdent("phi")) {
      advance();
      if (!expectPunct("("))
        return false;
      PhiInst *Phi = BB->appendPhi(Def);
      Phi->setLine(InstLine);
      while (true) {
        std::string Label;
        unsigned LabelLine = cur().Line;
        if (!expectIdent(Label))
          return false;
        BasicBlock *Pred = lookupBlock(Label);
        if (!Pred)
          return failAt(LabelLine, "unknown label '" + Label + "' in phi");
        if (!expectPunct(":"))
          return false;
        Operand Value;
        if (!parseOperand(Value))
          return false;
        Phi->addIncoming(Pred, Value);
        if (isPunct(",")) {
          advance();
          continue;
        }
        break;
      }
      return expectPunct(")");
    }
    if (isPunct("-") || isPunct("!")) {
      UnOp Op = isPunct("-") ? UnOp::Neg : UnOp::Not;
      advance();
      Operand Src;
      if (!parseOperand(Src))
        return false;
      BB->appendUnary(Def, Op, Src)->setLine(InstLine);
      return true;
    }
    Operand A;
    if (!parseOperand(A))
      return false;
    if (std::optional<BinOp> Op = currentBinOp()) {
      advance();
      Operand B;
      if (!parseOperand(B))
        return false;
      BB->appendBinary(Def, *Op, A, B)->setLine(InstLine);
      return true;
    }
    BB->appendCopy(Def, A)->setLine(InstLine);
    return true;
  }
};

} // namespace

ParseResult depflow::parseFunction(std::string_view Source) {
  Parser P;
  return P.run(Source);
}

ParseModuleResult depflow::parseModule(std::string_view Source) {
  Parser P;
  return P.runModule(Source);
}

std::string depflow::sourceExcerpt(std::string_view Source, unsigned Line,
                                   unsigned Context) {
  if (Line == 0)
    return "";
  // Split into lines (tolerating a missing final newline).
  std::vector<std::string_view> Lines;
  std::size_t Begin = 0;
  while (Begin <= Source.size()) {
    std::size_t End = Source.find('\n', Begin);
    if (End == std::string_view::npos) {
      Lines.push_back(Source.substr(Begin));
      break;
    }
    Lines.push_back(Source.substr(Begin, End - Begin));
    Begin = End + 1;
  }
  unsigned First = Line > Context ? Line - Context : 1;
  unsigned Last = std::min<std::size_t>(Line + Context, Lines.size());
  std::string Out;
  for (unsigned L = First; L <= Last; ++L) {
    std::string Num = std::to_string(L);
    Out += (L == Line ? "> " : "  ");
    Out += std::string(Num.size() < 4 ? 4 - Num.size() : 0, ' ') + Num +
           " | " + std::string(Lines[L - 1]) + "\n";
  }
  return Out;
}
