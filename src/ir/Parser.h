//===- ir/Parser.h - Textual IR parser --------------------------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual mini-language used by the examples and tests:
///
/// \code
///   func main(a, b) {
///   entry:
///     x = 1
///     y = a + b
///     if y goto then else els
///   then:
///     z = - x
///     goto join
///   els:
///     z = x
///     goto join
///   join:
///     w = read()
///     ret z, w
///   }
/// \endcode
///
/// The first block in the text is the entry. Comments run from '#' to end
/// of line. Parsing never throws; failures come back as an error message
/// with a line number.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_IR_PARSER_H
#define DEPFLOW_IR_PARSER_H

#include "ir/Module.h"

#include <memory>
#include <string>
#include <string_view>

namespace depflow {

/// Result of parsing: either a function, or an error message with the
/// source line it points at (0 when no line applies).
struct ParseResult {
  std::unique_ptr<Function> Fn;
  std::string Error;
  unsigned ErrorLine = 0;

  bool ok() const { return Fn != nullptr; }
};

/// Result of parsing a whole file: either a module, or an error message
/// with the source line it points at (0 when no line applies).
struct ParseModuleResult {
  std::unique_ptr<Module> M;
  std::string Error;
  unsigned ErrorLine = 0;

  bool ok() const { return M != nullptr; }
};

/// Parses one function definition from \p Source. Tokens past the first
/// function are ignored (parseModule consumes the whole input).
ParseResult parseFunction(std::string_view Source);

/// Parses every `func` definition in \p Source into a module, in textual
/// order (the first function stays the first). An empty input, trailing
/// garbage after a function, a truncated function at EOF, and two
/// functions with the same name are all diagnosed with a line number.
ParseModuleResult parseModule(std::string_view Source);

/// Renders the lines of \p Source around \p Line with a `>` marker on the
/// offending line — the excerpt depflow-opt and the fuzz reducer print so
/// failures are actionable without re-opening the input.
std::string sourceExcerpt(std::string_view Source, unsigned Line,
                          unsigned Context = 2);

} // namespace depflow

#endif // DEPFLOW_IR_PARSER_H
