//===- ir/Transforms.h - Basic CFG transformations --------------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural CFG clean-ups used by the optimization passes:
///
///  * `splitCriticalEdges` inserts an empty block on every edge whose source
///    is a switch and whose destination is a merge. The paper (Section 5.2)
///    notes Morel-Renvoise needs this; its DFG-based EPR does not, but the
///    CFG baseline implemented here does.
///  * `canonicalize` rewrites degenerate conditional branches (identical
///    targets) to jumps, so the verifier's switch condition holds.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_IR_TRANSFORMS_H
#define DEPFLOW_IR_TRANSFORMS_H

#include "ir/Function.h"

namespace depflow {

/// Splits every critical edge (switch source, merge destination) by
/// inserting a fresh block containing only a jump. Returns the number of
/// edges split. Preserves phi correctness by retargeting incoming blocks.
unsigned splitCriticalEdges(Function &F);

/// Rewrites `if c goto L else L` into `goto L`. Returns rewrites done.
unsigned canonicalizeBranches(Function &F);

/// Separates computation from branching and merging, the paper's node
/// model (Section 2.1): after this pass, a conditional branch lives in a
/// block with no other instructions, and a join block (>1 predecessors)
/// containing computation gets an empty merge block in front of it. This
/// maximizes the single-entry single-exit regions available for bypassing:
/// e.g. it creates the edge between a definition and the following branch
/// that lets a whole if-then-else be bypassed (Figure 1). Requires phi-free
/// IR. Returns the number of blocks added.
unsigned separateComputation(Function &F);

} // namespace depflow

#endif // DEPFLOW_IR_TRANSFORMS_H
