//===- ir/CFGEdges.cpp - Dense CFG edge numbering -------------------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "ir/CFGEdges.h"

using namespace depflow;

CFGEdges::CFGEdges(const Function &F) {
  Out.resize(F.numBlocks());
  In.resize(F.numBlocks());
  for (const auto &BB : F.blocks()) {
    std::vector<BasicBlock *> Succs = BB->successors();
    for (unsigned SI = 0, E = unsigned(Succs.size()); SI != E; ++SI) {
      unsigned Id = unsigned(Edges.size());
      Edges.push_back({Id, BB.get(), Succs[SI], SI});
      Out[BB->id()].push_back(Id);
      In[Succs[SI]->id()].push_back(Id);
    }
  }
}
