//===- ir/Module.cpp - Modules --------------------------------------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

using namespace depflow;

Status Module::addFunction(std::unique_ptr<Function> F) {
  assert(F && "null function");
  auto [It, Inserted] = IndexOf.try_emplace(F->name(), unsigned(Funcs.size()));
  (void)It;
  if (!Inserted)
    return Status::error("duplicate function '" + F->name() + "'");
  Funcs.push_back(std::move(F));
  return Status::success();
}

Status Module::replaceFunction(unsigned I, std::unique_ptr<Function> F) {
  if (I >= Funcs.size())
    return Status::error("replaceFunction: index out of range");
  if (!F)
    return Status::error("replaceFunction: null function");
  if (F->name() != Funcs[I]->name())
    return Status::error("replaceFunction: replacement must keep the name '" +
                         Funcs[I]->name() + "' (got '" + F->name() + "')");
  Funcs[I] = std::move(F);
  return Status::success();
}

Function *Module::lookup(std::string_view FnName) const {
  auto It = IndexOf.find(std::string(FnName));
  return It == IndexOf.end() ? nullptr : Funcs[It->second].get();
}

unsigned Module::numBlocks() const {
  unsigned N = 0;
  for (const auto &F : Funcs)
    N += F->numBlocks();
  return N;
}

unsigned Module::numInstructions() const {
  unsigned N = 0;
  for (const auto &F : Funcs)
    N += F->numInstructions();
  return N;
}
