//===- ir/Module.h - Modules ------------------------------------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A module is an ordered list of uniquely named functions — the unit the
/// whole-program drivers (depflow-opt, the parallel pass-pipeline driver,
/// the benches) operate on. The paper's algorithms are all per-function;
/// the module exists so many functions can be parsed from one `.df` file
/// and processed as a batch, in parallel, without any cross-function
/// state. Function order is the textual order, and every driver commits
/// results in that order so output is independent of scheduling.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_IR_MODULE_H
#define DEPFLOW_IR_MODULE_H

#include "ir/Function.h"
#include "support/Error.h"

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace depflow {

class Module {
  std::string Name;
  std::vector<std::unique_ptr<Function>> Funcs;
  std::unordered_map<std::string, unsigned> IndexOf;

public:
  explicit Module(std::string Name = "module") : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  /// Appends \p F. Fails (module unchanged) when a function of the same
  /// name is already present. The function's name must not change after
  /// insertion (the index maps names to positions).
  Status addFunction(std::unique_ptr<Function> F);

  unsigned numFunctions() const { return unsigned(Funcs.size()); }
  bool empty() const { return Funcs.empty(); }

  Function *function(unsigned I) const {
    assert(I < Funcs.size() && "function index out of range");
    return Funcs[I].get();
  }
  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Funcs;
  }

  /// Returns the function named \p FnName, or null.
  Function *lookup(std::string_view FnName) const;

  /// Replaces the function at position \p I with \p F, which must carry
  /// the same name (positions and the name index stay valid). The module
  /// pipeline's --keep-going path uses this to put a failed function's
  /// original text back; distinct positions can be replaced concurrently
  /// (each slot is owned by exactly one task).
  Status replaceFunction(unsigned I, std::unique_ptr<Function> F);

  /// Totals over every function (bench reporting).
  unsigned numBlocks() const;
  unsigned numInstructions() const;
};

} // namespace depflow

#endif // DEPFLOW_IR_MODULE_H
