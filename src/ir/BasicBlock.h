//===- ir/BasicBlock.h - Basic blocks ---------------------------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A basic block: a label, a straight-line list of definition instructions,
/// and one terminator. In the paper's node vocabulary, a block with a
/// conditional branch ends in a *switch*, and a block with multiple
/// predecessors begins with a *merge*; all dependence routing in src/core
/// uses that reading of the block-level CFG.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_IR_BASICBLOCK_H
#define DEPFLOW_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <memory>
#include <string>
#include <vector>

namespace depflow {

class Function;

class BasicBlock {
  friend class Function;

  Function *Parent = nullptr;
  unsigned Id = 0;
  std::string Label;
  std::vector<std::unique_ptr<Instruction>> Insts;
  std::vector<BasicBlock *> Preds; // Maintained by Function::recomputePreds().

  BasicBlock(Function *Parent, unsigned Id, std::string Label)
      : Parent(Parent), Id(Id), Label(std::move(Label)) {}

public:
  BasicBlock(const BasicBlock &) = delete;
  BasicBlock &operator=(const BasicBlock &) = delete;

  Function *parent() const { return Parent; }
  unsigned id() const { return Id; }
  const std::string &label() const { return Label; }

  /// All instructions including the terminator.
  const std::vector<std::unique_ptr<Instruction>> &instructions() const {
    return Insts;
  }
  bool empty() const { return Insts.empty(); }
  std::size_t size() const { return Insts.size(); }

  Instruction *terminator() const {
    if (Insts.empty() || !Insts.back()->isTerminator())
      return nullptr;
    return Insts.back().get();
  }

  /// Appends \p I before the terminator if one exists, else at the end.
  Instruction *insert(std::unique_ptr<Instruction> I);

  /// Appends a terminator; asserts the block has none yet.
  Instruction *setTerminator(std::unique_ptr<Instruction> I);

  /// Removes and destroys the current terminator (if any).
  void clearTerminator();

  /// Removes instruction at position \p Idx (not the terminator slot check —
  /// callers may remove any instruction).
  void removeInstruction(unsigned Idx);

  /// Replaces the instruction at \p Idx with \p NewInst.
  void replaceInstruction(unsigned Idx, std::unique_ptr<Instruction> NewInst);

  /// Inserts \p I at position \p Idx (before the instruction currently
  /// there).
  Instruction *insertAt(unsigned Idx, std::unique_ptr<Instruction> I);

  /// Returns the position of \p I within this block, or -1.
  int indexOf(const Instruction *I) const;

  // Convenience builders (all return the created instruction).
  CopyInst *appendCopy(VarId Def, Operand Src);
  UnaryInst *appendUnary(VarId Def, UnOp Op, Operand Src);
  BinaryInst *appendBinary(VarId Def, BinOp Op, Operand A, Operand B);
  ReadInst *appendRead(VarId Def);
  CallInst *appendCall(VarId Def, std::string Callee,
                       std::vector<Operand> Args);
  PhiInst *appendPhi(VarId Def); // Prepended before non-phi instructions.
  JumpInst *setJump(BasicBlock *Target);
  CondBrInst *setCondBr(Operand Cond, BasicBlock *TrueTarget,
                        BasicBlock *FalseTarget);
  RetInst *setRet(std::vector<Operand> Outputs);

  /// Successor blocks, derived from the terminator. Empty if no terminator
  /// or a ret.
  std::vector<BasicBlock *> successors() const;
  /// Successor count without materializing the vector (hot: the DFG
  /// builder asks this per block per variable).
  unsigned numSuccessors() const;

  const std::vector<BasicBlock *> &predecessors() const { return Preds; }
  unsigned numPredecessors() const { return unsigned(Preds.size()); }

  /// True if control can branch here (the block ends in a switch node).
  bool isSwitch() const { return numSuccessors() > 1; }
  /// True if control merges here (the block begins with a merge node).
  bool isMerge() const { return numPredecessors() > 1; }
};

} // namespace depflow

#endif // DEPFLOW_IR_BASICBLOCK_H
