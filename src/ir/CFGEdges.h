//===- ir/CFGEdges.h - Dense CFG edge numbering -----------------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's algorithms are *edge*-based: dominance, control dependence,
/// cycle equivalence, SESE regions, and all DFG dataflow values attach to
/// control flow edges rather than nodes. `CFGEdges` assigns each edge of a
/// function a dense id and provides per-block in/out adjacency.
///
/// Edge ids are a snapshot: rebuild after mutating the CFG.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_IR_CFGEDGES_H
#define DEPFLOW_IR_CFGEDGES_H

#include "ir/Function.h"

#include <vector>

namespace depflow {

/// One control flow edge From→To; SuccIdx is To's position in From's
/// successor list (0 = jump/true side, 1 = false side).
struct CFGEdge {
  unsigned Id;
  BasicBlock *From;
  BasicBlock *To;
  unsigned SuccIdx;
};

class CFGEdges {
  std::vector<CFGEdge> Edges;
  std::vector<std::vector<unsigned>> Out; // indexed by block id
  std::vector<std::vector<unsigned>> In;  // indexed by block id

public:
  explicit CFGEdges(const Function &F);

  unsigned size() const { return unsigned(Edges.size()); }

  const CFGEdge &edge(unsigned Id) const {
    assert(Id < Edges.size() && "edge id out of range");
    return Edges[Id];
  }

  const std::vector<unsigned> &outEdges(const BasicBlock *BB) const {
    return Out[BB->id()];
  }
  const std::vector<unsigned> &inEdges(const BasicBlock *BB) const {
    return In[BB->id()];
  }

  /// Returns the id of the \p SuccIdx-th out edge of \p From.
  unsigned outEdge(const BasicBlock *From, unsigned SuccIdx) const {
    assert(SuccIdx < Out[From->id()].size() && "successor index out of range");
    return Out[From->id()][SuccIdx];
  }
};

} // namespace depflow

#endif // DEPFLOW_IR_CFGEDGES_H
