//===- ir/Function.cpp - Function implementation --------------------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

using namespace depflow;

BasicBlock *Function::makeBlock(std::string Label) {
  unsigned Id = unsigned(Blocks.size());
  Blocks.push_back(
      std::unique_ptr<BasicBlock>(new BasicBlock(this, Id, std::move(Label))));
  return Blocks.back().get();
}

VarId Function::makeFreshVar(const std::string &Hint) {
  std::string Candidate = Hint;
  unsigned Suffix = 0;
  while (VarNames.lookup(Candidate) >= 0)
    Candidate = Hint + "." + std::to_string(Suffix++);
  return VarNames.intern(Candidate);
}

BasicBlock *Function::exit() const {
  BasicBlock *Exit = nullptr;
  for (const auto &BB : Blocks) {
    Instruction *Term = BB->terminator();
    if (Term && isa<RetInst>(Term)) {
      if (Exit)
        return nullptr; // Not unique.
      Exit = BB.get();
    }
  }
  return Exit;
}

void Function::recomputePreds() {
  for (const auto &BB : Blocks)
    BB->Preds.clear();
  for (const auto &BB : Blocks)
    for (BasicBlock *Succ : BB->successors())
      Succ->Preds.push_back(BB.get());
}

void Function::eraseBlocks(const std::vector<bool> &Keep) {
  assert(Keep.size() >= Blocks.size() && "Keep vector too small");
  std::vector<std::unique_ptr<BasicBlock>> Kept;
  for (auto &BB : Blocks) {
    if (!Keep[BB->id()])
      continue;
    BB->Id = unsigned(Kept.size());
    Kept.push_back(std::move(BB));
  }
  Blocks = std::move(Kept);
  recomputePreds();
}

unsigned Function::numEdges() const {
  unsigned N = 0;
  for (const auto &BB : Blocks)
    N += BB->numSuccessors();
  return N;
}

unsigned Function::numInstructions() const {
  unsigned N = 0;
  for (const auto &BB : Blocks)
    N += unsigned(BB->size());
  return N;
}
