//===- sdg/SystemDependenceGraph.cpp - Interprocedural SDG ----------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "sdg/SystemDependenceGraph.h"

#include "cdg/ControlDependence.h"
#include "core/DepFlowGraph.h"
#include "ir/CFGEdges.h"
#include "obs/EventLog.h"
#include "obs/Sched.h"
#include "obs/Trace.h"
#include "support/FaultInjection.h"
#include "support/Statistic.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <functional>
#include <thread>

using namespace depflow;

DEPFLOW_STATISTIC(NumSDGNodes, "sdg", "SDG nodes created");
DEPFLOW_STATISTIC(NumSDGEdges, "sdg", "SDG edges created (all kinds)");
DEPFLOW_STATISTIC(NumSDGSummaryEdges, "sdg",
                  "Summary edges (actual-in -> actual-out)");
DEPFLOW_STATISTIC(NumSDGCallSites, "sdg", "Call sites stitched");
DEPFLOW_STATISTIC(NumSDGSCCs, "sdg", "Call-graph SCCs condensed");
DEPFLOW_STATISTIC(NumSDGLevels, "sdg", "Condensation levels scheduled");
DEPFLOW_STATISTIC(NumSDGSummaryRounds, "sdg",
                  "Summary fixpoint rounds over SCC members");
DEPFLOW_MAX_STATISTIC(MaxSDGSCCSize, "sdg", "Largest call-graph SCC");
DEPFLOW_MAX_STATISTIC(MaxSDGLevelWidth, "sdg",
                      "Most SCCs on one condensation level");
DEPFLOW_HIST_STATISTIC(HistSDGSummaryPorts, "sdg",
                       "Formal-in ports per formal-out summary set");

const char *SystemDependenceGraph::nodeKindName(NodeKind K) {
  switch (K) {
  case NodeKind::Entry:
    return "entry";
  case NodeKind::Instr:
    return "instr";
  case NodeKind::FormalIn:
    return "formal-in";
  case NodeKind::FormalIOIn:
    return "formal-io-in";
  case NodeKind::FormalOut:
    return "formal-out";
  case NodeKind::FormalIOOut:
    return "formal-io-out";
  case NodeKind::ActualIn:
    return "actual-in";
  case NodeKind::ActualIOIn:
    return "actual-io-in";
  case NodeKind::ActualOut:
    return "actual-out";
  case NodeKind::ActualIOOut:
    return "actual-io-out";
  }
  return "unknown";
}

const char *SystemDependenceGraph::edgeKindName(EdgeKind K) {
  switch (K) {
  case EdgeKind::Control:
    return "control";
  case EdgeKind::Data:
    return "data";
  case EdgeKind::Call:
    return "call";
  case EdgeKind::ParamIn:
    return "param-in";
  case EdgeKind::ParamOut:
    return "param-out";
  case EdgeKind::Summary:
    return "summary";
  }
  return "unknown";
}

int SystemDependenceGraph::instrNode(unsigned F, const Instruction *I) const {
  const auto &Map = InstrMap[F];
  auto It = std::lower_bound(
      Map.begin(), Map.end(), I,
      [](const std::pair<const Instruction *, unsigned> &P,
         const Instruction *Key) { return P.first < Key; });
  if (It == Map.end() || It->first != I)
    return -1;
  return int(It->second);
}

namespace {

/// Everything one per-function task produces: the function's PDG nodes
/// (local ids, deterministic creation order) and its intraprocedural
/// control/data edges. Committed into a function-indexed slot, so global
/// numbering is independent of worker scheduling.
struct LocalPDG {
  using Node = SystemDependenceGraph::Node;
  using NodeKind = SystemDependenceGraph::NodeKind;

  std::vector<Node> Nodes;
  /// (src, dst) in local ids.
  std::vector<std::pair<unsigned, unsigned>> ControlEdges, DataEdges;

  unsigned Entry = 0;
  std::vector<int> FormalIns;
  int FormalOut = -1, FormalIOIn = -1, FormalIOOut = -1;

  struct SiteNodes {
    std::vector<int> Ins;
    int IOIn = -1, Out = -1, IOOut = -1;
  };
  /// Indexed like CallGraph::sitesOf(F) (canonical site order).
  std::vector<SiteNodes> Sites;

  /// Local id of every instruction's Instr node, in block/instr order.
  std::vector<std::pair<const Instruction *, unsigned>> Instrs;
};

/// An io point: an instruction that both uses and defines the io
/// pseudo-state (a read, or a call whose callee may read). Use/Def are
/// local node ids (for calls they differ: actual-io-in uses, actual-io-out
/// defines).
struct IOPoint {
  unsigned Block;
  unsigned UseNode;
  unsigned DefNode;
};

class FunctionPDGBuilder {
  Function &F;
  unsigned FI;
  const CallGraph &CG;
  const std::vector<char> &MayRead;
  LocalPDG &L;

  unsigned addNode(LocalPDG::NodeKind K, const Instruction *I = nullptr,
                   unsigned Aux = 0, unsigned Aux2 = 0) {
    L.Nodes.push_back({K, FI, I, Aux, Aux2});
    return unsigned(L.Nodes.size() - 1);
  }

public:
  FunctionPDGBuilder(Function &F, unsigned FI, const CallGraph &CG,
                     const std::vector<char> &MayRead, LocalPDG &L)
      : F(F), FI(FI), CG(CG), MayRead(MayRead), L(L) {}

  void run() {
    using NK = LocalPDG::NodeKind;
    const std::vector<unsigned> &SiteIds = CG.sitesOf(FI);

    // --- Nodes, in a fixed order -----------------------------------------
    L.Entry = addNode(NK::Entry);
    for (unsigned P = 0; P != F.params().size(); ++P)
      L.FormalIns.push_back(int(addNode(NK::FormalIn, nullptr, P)));
    if (MayRead[FI]) {
      L.FormalIOIn = int(addNode(NK::FormalIOIn));
      L.FormalIOOut = int(addNode(NK::FormalIOOut));
    }
    const Instruction *Ret = F.exit() ? F.exit()->terminator() : nullptr;
    if (Ret && Ret->numOperands() > 0)
      L.FormalOut = int(addNode(NK::FormalOut, Ret));

    for (const auto &BB : F.blocks())
      for (const auto &I : BB->instructions())
        L.Instrs.push_back({I.get(), addNode(NK::Instr, I.get())});
    std::sort(L.Instrs.begin(), L.Instrs.end());

    L.Sites.resize(SiteIds.size());
    for (unsigned SI = 0; SI != SiteIds.size(); ++SI) {
      const CallGraph::Site &S = CG.sites()[SiteIds[SI]];
      LocalPDG::SiteNodes &SN = L.Sites[SI];
      for (unsigned A = 0; A != S.Call->numArgs(); ++A)
        SN.Ins.push_back(
            int(addNode(NK::ActualIn, S.Call, SiteIds[SI], A)));
      if (MayRead[S.Callee]) {
        SN.IOIn = int(addNode(NK::ActualIOIn, S.Call, SiteIds[SI]));
        SN.IOOut = int(addNode(NK::ActualIOOut, S.Call, SiteIds[SI]));
      }
      SN.Out = int(addNode(NK::ActualOut, S.Call, SiteIds[SI]));
    }

    // --- Structural analyses ---------------------------------------------
    CFGEdges E(F);
    DepFlowGraph DFG = DepFlowGraph::build(F, E);
    std::vector<std::vector<unsigned>> CD = nodeControlDependence(F, E);

    buildControlEdges(E, CD);
    buildDataEdges(DFG);
    if (MayRead[FI])
      buildIOEdges();
  }

private:
  unsigned instrLocal(const Instruction *I) const {
    auto It = std::lower_bound(
        L.Instrs.begin(), L.Instrs.end(), I,
        [](const std::pair<const Instruction *, unsigned> &P,
           const Instruction *Key) { return P.first < Key; });
    assert(It != L.Instrs.end() && It->first == I && "instruction not mapped");
    return It->second;
  }

  /// Local site index of a call instruction (sites are few per function).
  int siteOf(const Instruction *I) const {
    const std::vector<unsigned> &SiteIds = CG.sitesOf(FI);
    for (unsigned SI = 0; SI != SiteIds.size(); ++SI)
      if (CG.sites()[SiteIds[SI]].Call == I)
        return int(SI);
    return -1;
  }

  void buildControlEdges(const CFGEdges &E,
                         const std::vector<std::vector<unsigned>> &CD) {
    // Formals hang off the entry, actuals off their call instruction.
    for (int FIn : L.FormalIns)
      L.ControlEdges.push_back({L.Entry, unsigned(FIn)});
    if (L.FormalIOIn >= 0)
      L.ControlEdges.push_back({L.Entry, unsigned(L.FormalIOIn)});
    if (L.FormalIOOut >= 0)
      L.ControlEdges.push_back({L.Entry, unsigned(L.FormalIOOut)});
    if (L.FormalOut >= 0)
      L.ControlEdges.push_back({L.Entry, unsigned(L.FormalOut)});
    const std::vector<unsigned> &SiteIds = CG.sitesOf(FI);
    for (unsigned SI = 0; SI != SiteIds.size(); ++SI) {
      unsigned CallNode = instrLocal(CG.sites()[SiteIds[SI]].Call);
      const LocalPDG::SiteNodes &SN = L.Sites[SI];
      for (int In : SN.Ins)
        L.ControlEdges.push_back({CallNode, unsigned(In)});
      if (SN.IOIn >= 0)
        L.ControlEdges.push_back({CallNode, unsigned(SN.IOIn)});
      if (SN.IOOut >= 0)
        L.ControlEdges.push_back({CallNode, unsigned(SN.IOOut)});
      L.ControlEdges.push_back({CallNode, unsigned(SN.Out)});
    }

    // Instruction-level control dependence from the block-level FOW sets:
    // an instruction depends on the condbr at the source of every branch
    // edge its block depends on; blocks with no control dependence hang
    // off the entry.
    for (const auto &BB : F.blocks()) {
      std::vector<unsigned> Srcs;
      for (unsigned BranchEdge : CD[BB->id()]) {
        const Instruction *Br = E.edge(BranchEdge).From->terminator();
        assert(Br && isa<CondBrInst>(Br) && "branch edge without a condbr");
        Srcs.push_back(instrLocal(Br));
      }
      std::sort(Srcs.begin(), Srcs.end());
      Srcs.erase(std::unique(Srcs.begin(), Srcs.end()), Srcs.end());
      for (const auto &I : BB->instructions()) {
        unsigned Dst = instrLocal(I.get());
        if (Srcs.empty())
          L.ControlEdges.push_back({L.Entry, Dst});
        else
          for (unsigned Src : Srcs)
            L.ControlEdges.push_back({Src, Dst});
      }
    }
  }

  /// All reaching definition sources of use (I, OpIdx), walked backward
  /// through the DFG's switch/merge routing until a def or the entry.
  void reachingSources(const DepFlowGraph &DFG, const Instruction *I,
                       unsigned OpIdx, VarId V,
                       std::vector<unsigned> &SrcsOut,
                       std::vector<char> &Visited) {
    int Use = DFG.useNode(I, OpIdx);
    if (Use < 0)
      return;
    std::fill(Visited.begin(), Visited.end(), 0);
    std::vector<unsigned> Work{unsigned(Use)};
    Visited[unsigned(Use)] = 1;
    while (!Work.empty()) {
      unsigned N = Work.back();
      Work.pop_back();
      for (unsigned EId : DFG.inEdges(N)) {
        const DepFlowGraph::Edge &DE = DFG.edge(EId);
        if (DE.Var != V)
          continue;
        if (Visited[DE.Src])
          continue;
        Visited[DE.Src] = 1;
        const DepFlowGraph::Node DN = DFG.node(DE.Src);
        switch (DN.Kind) {
        case DepFlowGraph::NodeKind::Def: {
          // A def by a call materializes at the site's actual-out.
          if (isa<CallInst>(DN.Inst)) {
            int SI = siteOf(DN.Inst);
            assert(SI >= 0 && "call def without a site");
            SrcsOut.push_back(unsigned(L.Sites[SI].Out));
          } else {
            SrcsOut.push_back(instrLocal(DN.Inst));
          }
          break;
        }
        case DepFlowGraph::NodeKind::Entry:
          // Initial values: parameters flow from their formal-in; plain
          // variables are implicitly zero (no dependence).
          for (unsigned P = 0; P != F.params().size(); ++P)
            if (F.params()[P] == V)
              SrcsOut.push_back(unsigned(L.FormalIns[P]));
          break;
        case DepFlowGraph::NodeKind::Use:
          break; // Uses have no in-edges; unreachable on a backward walk.
        case DepFlowGraph::NodeKind::Switch:
        case DepFlowGraph::NodeKind::Merge:
          Work.push_back(DE.Src);
          break;
        }
      }
    }
    std::sort(SrcsOut.begin(), SrcsOut.end());
    SrcsOut.erase(std::unique(SrcsOut.begin(), SrcsOut.end()), SrcsOut.end());
  }

  void buildDataEdges(const DepFlowGraph &DFG) {
    std::vector<char> Visited(DFG.numNodes(), 0);
    std::vector<unsigned> Srcs;
    for (const auto &BB : F.blocks()) {
      for (const auto &IPtr : BB->instructions()) {
        const Instruction *I = IPtr.get();
        int SI = isa<CallInst>(I) ? siteOf(I) : -1;
        for (unsigned OpIdx = 0; OpIdx != I->numOperands(); ++OpIdx) {
          const Operand &Op = I->operand(OpIdx);
          if (!Op.isVar())
            continue;
          Srcs.clear();
          reachingSources(DFG, I, OpIdx, Op.var(), Srcs, Visited);
          // A call's argument value feeds the site's actual-in node; every
          // other operand feeds the instruction itself.
          unsigned Dst = SI >= 0 ? unsigned(L.Sites[SI].Ins[OpIdx])
                                 : instrLocal(I);
          for (unsigned Src : Srcs)
            L.DataEdges.push_back({Src, Dst});
        }
      }
    }
    // The function's return value: reaching defs of the first ret operand
    // feed formal-out (the value a call site receives).
    if (L.FormalOut >= 0) {
      const Instruction *Ret = F.exit()->terminator();
      const Operand &Op = Ret->operand(0);
      if (Op.isVar()) {
        Srcs.clear();
        reachingSources(DFG, Ret, 0, Op.var(), Srcs, Visited);
        for (unsigned Src : Srcs)
          L.DataEdges.push_back({Src, unsigned(L.FormalOut)});
      }
    }
  }

  /// io chains: reads and calls-to-may-read-callees consume the shared
  /// input stream in execution order, so each such point uses the io state
  /// of every point that can immediately precede it (a reaching-defs pass
  /// with exactly one pseudo-variable).
  void buildIOEdges() {
    std::vector<IOPoint> Points;
    std::vector<std::vector<unsigned>> PointsOf(F.numBlocks());
    for (const auto &BB : F.blocks())
      for (const auto &IPtr : BB->instructions()) {
        const Instruction *I = IPtr.get();
        if (isa<ReadInst>(I)) {
          unsigned N = instrLocal(I);
          PointsOf[BB->id()].push_back(unsigned(Points.size()));
          Points.push_back({BB->id(), N, N});
        } else if (isa<CallInst>(I)) {
          int SI = siteOf(I);
          assert(SI >= 0);
          const LocalPDG::SiteNodes &SN = L.Sites[SI];
          if (SN.IOIn < 0)
            continue; // Callee never reads: io passes through untouched.
          PointsOf[BB->id()].push_back(unsigned(Points.size()));
          Points.push_back({BB->id(), unsigned(SN.IOIn), unsigned(SN.IOOut)});
        }
      }

    // Def index space: 0 = formal-io-in (the stream position at entry),
    // 1 + p = io point p.
    const unsigned NumDefs = 1 + unsigned(Points.size());
    auto DefNode = [&](unsigned D) {
      return D == 0 ? unsigned(L.FormalIOIn) : Points[D - 1].DefNode;
    };

    const unsigned NB = F.numBlocks();
    std::vector<std::vector<char>> BlockIn(NB, std::vector<char>(NumDefs, 0));
    BlockIn[F.entry()->id()][0] = 1;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const auto &BB : F.blocks()) {
        unsigned B = BB->id();
        // OUT[b] = last point in b, else IN[b]; push into successors.
        for (BasicBlock *Succ : BB->successors()) {
          std::vector<char> &SIn = BlockIn[Succ->id()];
          if (!PointsOf[B].empty()) {
            unsigned D = 1 + PointsOf[B].back();
            if (!SIn[D]) {
              SIn[D] = 1;
              Changed = true;
            }
          } else {
            const std::vector<char> &BIn = BlockIn[B];
            for (unsigned D = 0; D != NumDefs; ++D)
              if (BIn[D] && !SIn[D]) {
                SIn[D] = 1;
                Changed = true;
              }
          }
        }
      }
    }

    auto Emit = [&](const std::vector<char> &Reaching, unsigned UseNode) {
      for (unsigned D = 0; D != NumDefs; ++D)
        if (Reaching[D])
          L.DataEdges.push_back({DefNode(D), UseNode});
    };
    for (const auto &BB : F.blocks()) {
      unsigned B = BB->id();
      std::vector<char> Cur = BlockIn[B];
      for (unsigned P : PointsOf[B]) {
        Emit(Cur, Points[P].UseNode);
        std::fill(Cur.begin(), Cur.end(), 0);
        Cur[1 + P] = 1;
      }
      if (BB.get() == F.exit())
        Emit(Cur, unsigned(L.FormalIOOut));
    }
  }
};

/// The fixed-pool claim loop shared by the per-function and per-SCC
/// phases: workers pull indices from one atomic counter; each item is
/// processed by exactly one worker, start to finish. The body receives
/// (item, worker) so the scheduler telemetry can attribute tasks to pool
/// slots; a serial run is worker 0. Templated on the body so the lambda
/// is called directly — no std::function conversion, which would heap-
/// allocate per call now that the bodies capture telemetry state (the
/// alloc-counter perf gate counts exactly).
template <typename BodyT>
void runPool(unsigned Jobs, unsigned NumItems, const BodyT &Body) {
  if (NumItems == 0)
    return;
  unsigned N = Jobs ? Jobs : std::thread::hardware_concurrency();
  if (N == 0)
    N = 1;
  N = std::min(N, NumItems);
  if (N <= 1) {
    for (unsigned I = 0; I != NumItems; ++I)
      Body(I, 0);
    return;
  }
  std::atomic<unsigned> Next{0};
  auto Work = [&](unsigned Worker) {
    if (obs::TraceRecorder::global().enabled())
      obs::TraceRecorder::global().setCurrentThreadName(
          "sdg-worker-" + std::to_string(Worker));
    for (unsigned I; (I = Next.fetch_add(1, std::memory_order_relaxed)) <
                     NumItems;)
      Body(I, Worker);
  };
  std::vector<std::thread> Pool;
  Pool.reserve(N);
  for (unsigned T = 0; T != N; ++T)
    Pool.emplace_back(Work, T);
  for (std::thread &T : Pool)
    T.join();
}

} // namespace

SystemDependenceGraph
SystemDependenceGraph::build(Module &M, const SDGBuildOptions &Opts) {
  // Fault point `analysis-fail:sdg`: fires here, before any worker
  // thread exists, so the throw always unwinds on the caller's thread.
  faultAnalysisCheckpoint("sdg");
  SystemDependenceGraph G;
  G.M = &M;
  G.CG = CallGraph::build(M);
  const CallGraph &CG = G.CG;
  const unsigned NF = M.numFunctions();
  const unsigned NS = unsigned(CG.sites().size());

  // May-read: a function reads if it contains a read() or calls a reader.
  // Bottom-up over the condensation; within an SCC the property is shared
  // (mutual recursion), so iterate members until stable.
  G.MayRead.assign(NF, 0);
  for (unsigned FI = 0; FI != NF; ++FI)
    for (const auto &BB : M.function(FI)->blocks())
      for (const auto &I : BB->instructions())
        if (isa<ReadInst>(I.get()))
          G.MayRead[FI] = 1;
  for (unsigned SCC = 0; SCC != CG.numSCCs(); ++SCC) {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned FI : CG.members(SCC))
        if (!G.MayRead[FI])
          for (unsigned Callee : CG.calleesOf(FI))
            if (G.MayRead[Callee]) {
              G.MayRead[FI] = 1;
              Changed = true;
              break;
            }
    }
  }

  // Scheduler telemetry: the SDG build is level-structured by
  // construction — phase A is level 0 (every function's PDG task is ready
  // at once), phase C condensation level L is level 1+L (a barrier
  // separates levels). Timestamps feed --sched-report; the noteSched*
  // counters are structure-only and byte-identical at any -j.
  const bool SchedOn = obs::SchedRecorder::global().enabled();
  unsigned PoolJobs =
      Opts.Jobs ? Opts.Jobs : std::thread::hardware_concurrency();
  if (!PoolJobs)
    PoolJobs = 1;
  std::vector<obs::SchedTask> SchedTasks;
  const double RunBeginUs = obs::TraceRecorder::global().nowUs();
  obs::LogEvent(obs::LogLevel::Info, "sched", "run-start")
      .field("run", "sdg-build")
      .field("jobs", PoolJobs)
      .field("functions", NF);
  obs::noteSchedRun();
  obs::noteSchedLevel(NF);
  for (unsigned FI = 0; FI != NF; ++FI)
    obs::noteSchedTask(0);

  // --- Phase A: per-function PDGs, one fixed-pool task per function -----
  std::vector<LocalPDG> Locals(NF);
  if (SchedOn)
    SchedTasks.resize(NF);
  const double PhaseABeginUs = obs::TraceRecorder::global().nowUs();
  runPool(Opts.Jobs, NF, [&](unsigned FI, unsigned Worker) {
    obs::TraceSpan Span("task", "pdg:" + M.function(FI)->name());
    Span.arg("level", "0");
    Span.arg("worker", std::to_string(Worker));
    Span.arg("enqueue_us", std::to_string(PhaseABeginUs));
    // Journal calls are guarded so the disabled path performs no
    // allocation (the name concatenations below are call-site cost the
    // inert LogEvent cannot elide; the alloc-counter perf gate watches).
    if (obs::EventLogger::global().enabled())
      obs::LogEvent(obs::LogLevel::Info, "sched", "task-start")
          .field("run", "sdg-build")
          .field("task", "pdg:" + M.function(FI)->name())
          .field("worker", Worker)
          .field("level", 0u);
    const double T0 = SchedOn ? obs::TraceRecorder::global().nowUs() : 0;
    FunctionPDGBuilder B(*M.function(FI), FI, CG, G.MayRead, Locals[FI]);
    B.run();
    if (obs::EventLogger::global().enabled())
      obs::LogEvent(obs::LogLevel::Debug, "sched", "task-commit")
          .field("run", "sdg-build")
          .field("task", "pdg:" + M.function(FI)->name())
          .field("worker", Worker)
          .field("level", 0u);
    if (SchedOn) {
      obs::SchedTask &T = SchedTasks[FI];
      T.Name = "pdg:" + M.function(FI)->name();
      T.Level = 0;
      T.Worker = Worker;
      T.EnqueueUs = PhaseABeginUs;
      T.StartUs = T0;
      T.EndUs = obs::TraceRecorder::global().nowUs();
    }
  });

  // --- Phase B: global numbering + interprocedural stitching (serial) ---
  std::vector<unsigned> Base(NF + 1, 0);
  for (unsigned FI = 0; FI != NF; ++FI)
    Base[FI + 1] = Base[FI] + unsigned(Locals[FI].Nodes.size());
  G.Nodes.reserve(Base[NF]);
  for (unsigned FI = 0; FI != NF; ++FI)
    G.Nodes.insert(G.Nodes.end(), Locals[FI].Nodes.begin(),
                   Locals[FI].Nodes.end());

  G.EntryOf.resize(NF);
  G.FormalIns.resize(NF);
  G.FormalOutOf.assign(NF, -1);
  G.FormalIOInOf.assign(NF, -1);
  G.FormalIOOutOf.assign(NF, -1);
  G.InstrMap.resize(NF);
  G.ActualIns.resize(NS);
  G.ActualOutOf.assign(NS, -1);
  G.ActualIOInOf.assign(NS, -1);
  G.ActualIOOutOf.assign(NS, -1);

  auto Lift = [&](unsigned FI, int Local) {
    return Local < 0 ? -1 : int(Base[FI] + unsigned(Local));
  };
  for (unsigned FI = 0; FI != NF; ++FI) {
    const LocalPDG &L = Locals[FI];
    G.EntryOf[FI] = Base[FI] + L.Entry;
    for (int FIn : L.FormalIns)
      G.FormalIns[FI].push_back(Lift(FI, FIn));
    G.FormalOutOf[FI] = Lift(FI, L.FormalOut);
    G.FormalIOInOf[FI] = Lift(FI, L.FormalIOIn);
    G.FormalIOOutOf[FI] = Lift(FI, L.FormalIOOut);
    for (const auto &[I, LocalId] : L.Instrs)
      G.InstrMap[FI].push_back({I, Base[FI] + LocalId});
    const std::vector<unsigned> &SiteIds = CG.sitesOf(FI);
    for (unsigned SI = 0; SI != SiteIds.size(); ++SI) {
      const LocalPDG::SiteNodes &SN = L.Sites[SI];
      unsigned Site = SiteIds[SI];
      for (int In : SN.Ins)
        G.ActualIns[Site].push_back(Lift(FI, In));
      G.ActualOutOf[Site] = Lift(FI, SN.Out);
      G.ActualIOInOf[Site] = Lift(FI, SN.IOIn);
      G.ActualIOOutOf[Site] = Lift(FI, SN.IOOut);
    }
  }

  for (unsigned FI = 0; FI != NF; ++FI) {
    for (auto [Src, Dst] : Locals[FI].ControlEdges)
      G.Edges.push_back({Base[FI] + Src, Base[FI] + Dst, EdgeKind::Control});
    for (auto [Src, Dst] : Locals[FI].DataEdges)
      G.Edges.push_back({Base[FI] + Src, Base[FI] + Dst, EdgeKind::Data});
  }

  for (unsigned Site = 0; Site != NS; ++Site) {
    const CallGraph::Site &S = CG.sites()[Site];
    unsigned Callee = S.Callee;
    int CallNode = G.instrNode(S.Caller, S.Call);
    assert(CallNode >= 0);
    G.Edges.push_back(
        {unsigned(CallNode), G.EntryOf[Callee], EdgeKind::Call});
    assert(G.ActualIns[Site].size() == G.FormalIns[Callee].size() &&
           "arity verified before SDG construction");
    for (unsigned A = 0; A != G.ActualIns[Site].size(); ++A)
      G.Edges.push_back({unsigned(G.ActualIns[Site][A]),
                         unsigned(G.FormalIns[Callee][A]), EdgeKind::ParamIn});
    if (G.ActualIOInOf[Site] >= 0) {
      G.Edges.push_back({unsigned(G.ActualIOInOf[Site]),
                         unsigned(G.FormalIOInOf[Callee]), EdgeKind::ParamIn});
      G.Edges.push_back({unsigned(G.FormalIOOutOf[Callee]),
                         unsigned(G.ActualIOOutOf[Site]), EdgeKind::ParamOut});
    }
    if (G.FormalOutOf[Callee] >= 0)
      G.Edges.push_back({unsigned(G.FormalOutOf[Callee]),
                         unsigned(G.ActualOutOf[Site]), EdgeKind::ParamOut});
  }

  auto RebuildAdjacency = [&](unsigned FromEdge) {
    G.Out.resize(G.Nodes.size());
    G.In.resize(G.Nodes.size());
    for (unsigned E = FromEdge; E != G.Edges.size(); ++E) {
      G.Out[G.Edges[E].Src].push_back(E);
      G.In[G.Edges[E].Dst].push_back(E);
    }
  };
  RebuildAdjacency(0);

  // --- Phase C: summaries, bottom-up over condensation levels -----------
  // In-port space per function: parameters then io-in. Summary sets are
  // per out-port (formal-out, formal-io-out) bitsets over in-ports.
  struct FnSummary {
    std::vector<char> RetDeps; // formal-out <- in-ports
    std::vector<char> IODeps;  // formal-io-out <- in-ports
  };
  std::vector<FnSummary> Summaries(NF);
  for (unsigned FI = 0; FI != NF; ++FI) {
    unsigned Ports = unsigned(G.FormalIns[FI].size()) +
                     (G.FormalIOInOf[FI] >= 0 ? 1 : 0);
    Summaries[FI].RetDeps.assign(Ports, 0);
    Summaries[FI].IODeps.assign(Ports, 0);
  }
  auto InPortIndex = [&](unsigned FI, unsigned NodeId) -> int {
    const Node &N = G.Nodes[NodeId];
    if (N.Kind == NodeKind::FormalIn)
      return int(N.Aux);
    if (N.Kind == NodeKind::FormalIOIn)
      return int(G.FormalIns[FI].size());
    return -1;
  };

  std::atomic<std::uint64_t> TotalRounds{0};

  // Backward reachability from one out-port node, staying inside the
  // function: interprocedural edges are skipped, interior call sites are
  // crossed through the callee's current summary sets.
  auto ComputePort = [&](unsigned FI, unsigned PortNode,
                         std::vector<char> &DepsOut,
                         std::vector<char> &Visited) {
    std::fill(DepsOut.begin(), DepsOut.end(), 0);
    std::fill(Visited.begin(), Visited.end(), 0);
    std::vector<unsigned> Work{PortNode};
    Visited[PortNode - Base[FI]] = 1;
    while (!Work.empty()) {
      unsigned N = Work.back();
      Work.pop_back();
      int Port = InPortIndex(FI, N);
      if (Port >= 0)
        DepsOut[unsigned(Port)] = 1;
      auto Push = [&](unsigned Id) {
        unsigned LocalId = Id - Base[FI];
        if (!Visited[LocalId]) {
          Visited[LocalId] = 1;
          Work.push_back(Id);
        }
      };
      for (unsigned EId : G.In[N]) {
        const Edge &E = G.Edges[EId];
        if (E.Kind == EdgeKind::Call || E.Kind == EdgeKind::ParamIn ||
            E.Kind == EdgeKind::ParamOut || E.Kind == EdgeKind::Summary)
          continue;
        Push(E.Src);
      }
      const Node &Nd = G.Nodes[N];
      if (Nd.Kind == NodeKind::ActualOut || Nd.Kind == NodeKind::ActualIOOut) {
        unsigned Site = Nd.Aux;
        unsigned Callee = CG.sites()[Site].Callee;
        const std::vector<char> &Deps =
            Nd.Kind == NodeKind::ActualOut ? Summaries[Callee].RetDeps
                                           : Summaries[Callee].IODeps;
        unsigned NumParams = unsigned(G.FormalIns[Callee].size());
        for (unsigned P = 0; P != Deps.size(); ++P) {
          if (!Deps[P])
            continue;
          int ActualNode = P < NumParams ? G.ActualIns[Site][P]
                                         : G.ActualIOInOf[Site];
          if (ActualNode >= 0)
            Push(unsigned(ActualNode));
        }
      }
    }
  };

  auto ProcessSCC = [&](unsigned SCC) {
    const std::vector<unsigned> &Members = CG.members(SCC);
    std::uint64_t Rounds = 0;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      ++Rounds;
      for (unsigned FI : Members) {
        std::vector<char> Visited(Locals[FI].Nodes.size(), 0);
        FnSummary &S = Summaries[FI];
        std::vector<char> Fresh(S.RetDeps.size(), 0);
        if (G.FormalOutOf[FI] >= 0) {
          ComputePort(FI, unsigned(G.FormalOutOf[FI]), Fresh, Visited);
          if (Fresh != S.RetDeps) {
            S.RetDeps = Fresh;
            Changed = true;
          }
        }
        if (G.FormalIOOutOf[FI] >= 0) {
          ComputePort(FI, unsigned(G.FormalIOOutOf[FI]), Fresh, Visited);
          if (Fresh != S.IODeps) {
            S.IODeps = Fresh;
            Changed = true;
          }
        }
      }
      // Non-recursive SCCs converge in one pass (their callees' summaries
      // are complete before the level starts).
      if (!CG.isRecursive(SCC))
        break;
    }
    TotalRounds.fetch_add(Rounds, std::memory_order_relaxed);
  };

  for (unsigned Level = 0; Level != CG.numLevels(); ++Level) {
    const std::vector<unsigned> &SCCs = CG.level(Level);
    MaxSDGLevelWidth.update(SCCs.size());
    obs::noteSchedLevel(unsigned(SCCs.size()));
    for (std::size_t I = 0; I != SCCs.size(); ++I)
      obs::noteSchedTask(1 + Level);
    std::size_t TaskBase = SchedTasks.size();
    if (SchedOn)
      SchedTasks.resize(TaskBase + SCCs.size());
    const double LevelBeginUs = obs::TraceRecorder::global().nowUs();
    runPool(Opts.Jobs, unsigned(SCCs.size()), [&](unsigned I,
                                                  unsigned Worker) {
      obs::TraceSpan Span("task", "scc:" + std::to_string(SCCs[I]));
      Span.arg("level", std::to_string(1 + Level));
      Span.arg("worker", std::to_string(Worker));
      Span.arg("enqueue_us", std::to_string(LevelBeginUs));
      if (obs::EventLogger::global().enabled())
        obs::LogEvent(obs::LogLevel::Info, "sched", "task-start")
            .field("run", "sdg-build")
            .field("task", "scc:" + std::to_string(SCCs[I]))
            .field("worker", Worker)
            .field("level", 1 + Level);
      const double T0 = SchedOn ? obs::TraceRecorder::global().nowUs() : 0;
      ProcessSCC(SCCs[I]);
      if (obs::EventLogger::global().enabled())
        obs::LogEvent(obs::LogLevel::Debug, "sched", "task-commit")
            .field("run", "sdg-build")
            .field("task", "scc:" + std::to_string(SCCs[I]))
            .field("worker", Worker)
            .field("level", 1 + Level);
      if (SchedOn) {
        obs::SchedTask &T = SchedTasks[TaskBase + I];
        T.Name = "scc:" + std::to_string(SCCs[I]);
        T.Level = 1 + Level;
        T.Worker = Worker;
        T.EnqueueUs = LevelBeginUs;
        T.StartUs = T0;
        T.EndUs = obs::TraceRecorder::global().nowUs();
      }
    });
  }

  // --- Phase D: materialize summary edges (serial, site order) ----------
  unsigned FirstSummaryEdge = unsigned(G.Edges.size());
  for (unsigned Site = 0; Site != NS; ++Site) {
    unsigned Callee = CG.sites()[Site].Callee;
    const FnSummary &S = Summaries[Callee];
    unsigned NumParams = unsigned(G.FormalIns[Callee].size());
    auto EmitSummary = [&](const std::vector<char> &Deps, int OutNode) {
      if (OutNode < 0)
        return;
      for (unsigned P = 0; P != Deps.size(); ++P) {
        if (!Deps[P])
          continue;
        int InNode = P < NumParams ? G.ActualIns[Site][P]
                                   : G.ActualIOInOf[Site];
        if (InNode >= 0)
          G.Edges.push_back(
              {unsigned(InNode), unsigned(OutNode), EdgeKind::Summary});
      }
    };
    if (G.FormalOutOf[Callee] >= 0)
      EmitSummary(S.RetDeps, G.ActualOutOf[Site]);
    if (G.FormalIOOutOf[Callee] >= 0)
      EmitSummary(S.IODeps, G.ActualIOOutOf[Site]);
  }
  RebuildAdjacency(FirstSummaryEdge);

  // --- Stats + counters (all serial or commuting: -j independent) -------
  G.BuildStats.Nodes = unsigned(G.Nodes.size());
  G.BuildStats.Edges = unsigned(G.Edges.size());
  G.BuildStats.SummaryEdges = unsigned(G.Edges.size()) - FirstSummaryEdge;
  G.BuildStats.CallSites = NS;
  G.BuildStats.SCCs = CG.numSCCs();
  G.BuildStats.Levels = CG.numLevels();
  G.BuildStats.SummaryRounds =
      unsigned(TotalRounds.load(std::memory_order_relaxed));

  NumSDGNodes += G.BuildStats.Nodes;
  NumSDGEdges += G.BuildStats.Edges;
  NumSDGSummaryEdges += G.BuildStats.SummaryEdges;
  NumSDGCallSites += NS;
  NumSDGSCCs += CG.numSCCs();
  NumSDGLevels += CG.numLevels();
  NumSDGSummaryRounds += G.BuildStats.SummaryRounds;
  for (unsigned SCC = 0; SCC != CG.numSCCs(); ++SCC)
    MaxSDGSCCSize.update(CG.members(SCC).size());
  for (unsigned FI = 0; FI != NF; ++FI) {
    if (G.FormalOutOf[FI] >= 0)
      HistSDGSummaryPorts.sample(std::uint64_t(
          std::count(Summaries[FI].RetDeps.begin(),
                     Summaries[FI].RetDeps.end(), char(1))));
    if (G.FormalIOOutOf[FI] >= 0)
      HistSDGSummaryPorts.sample(std::uint64_t(
          std::count(Summaries[FI].IODeps.begin(), Summaries[FI].IODeps.end(),
                     char(1))));
  }

  // Close out the scheduler telemetry. Wall spans phases A-D (the serial
  // numbering/stitch and summary-edge phases included), so wall >=
  // critical-path holds a fortiori.
  const double RunEndUs = obs::TraceRecorder::global().nowUs();
  unsigned MaxReady = NF;
  for (unsigned Level = 0; Level != CG.numLevels(); ++Level)
    MaxReady = std::max(MaxReady, unsigned(CG.level(Level).size()));
  obs::LogEvent(obs::LogLevel::Info, "sched", "run-end")
      .field("run", "sdg-build")
      .field("jobs", PoolJobs)
      .field("tasks", std::uint64_t(NF) + CG.numSCCs())
      .field("levels", 1 + CG.numLevels())
      .field("wall_us", RunEndUs - RunBeginUs);
  if (SchedOn) {
    obs::SchedRun SR;
    SR.Name = "sdg-build";
    SR.Jobs = PoolJobs;
    SR.NumLevels = 1 + CG.numLevels();
    SR.MaxReady = MaxReady;
    SR.BeginUs = RunBeginUs;
    SR.EndUs = RunEndUs;
    SR.Tasks = std::move(SchedTasks);
    obs::SchedRecorder::global().record(std::move(SR));
  }
  return G;
}

std::string SystemDependenceGraph::nodeLabel(unsigned Id) const {
  const Node &N = Nodes[Id];
  const Function *F = M->function(N.Func);
  std::string S = F->name() + ":" + nodeKindName(N.Kind);
  switch (N.Kind) {
  case NodeKind::Instr:
    S += " line " + std::to_string(N.I->line());
    break;
  case NodeKind::FormalIn:
    S += " " + F->varName(F->params()[N.Aux]);
    break;
  case NodeKind::ActualIn:
    S += " arg" + std::to_string(N.Aux2) + " line " +
         std::to_string(N.I->line());
    break;
  case NodeKind::ActualOut:
  case NodeKind::ActualIOIn:
  case NodeKind::ActualIOOut:
    S += " line " + std::to_string(N.I->line());
    break;
  default:
    break;
  }
  return S;
}

std::string SystemDependenceGraph::toDot() const {
  std::string S = "digraph sdg {\n  node [shape=box, fontname=\"monospace\"];\n";
  for (unsigned FI = 0; FI != M->numFunctions(); ++FI) {
    S += "  subgraph cluster_f" + std::to_string(FI) + " {\n    label=\"" +
         M->function(FI)->name() + "\";\n";
    for (unsigned N = 0; N != Nodes.size(); ++N)
      if (Nodes[N].Func == FI)
        S += "    n" + std::to_string(N) + " [label=\"" + nodeLabel(N) +
             "\"];\n";
    S += "  }\n";
  }
  for (const Edge &E : Edges) {
    const char *Style = "";
    switch (E.Kind) {
    case EdgeKind::Control:
      Style = " [style=dashed]";
      break;
    case EdgeKind::Summary:
      Style = " [style=dotted, color=blue]";
      break;
    case EdgeKind::Call:
    case EdgeKind::ParamIn:
    case EdgeKind::ParamOut:
      Style = " [color=red]";
      break;
    case EdgeKind::Data:
      break;
    }
    S += "  n" + std::to_string(E.Src) + " -> n" + std::to_string(E.Dst) +
         Style + ";\n";
  }
  S += "}\n";
  return S;
}
