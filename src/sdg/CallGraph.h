//===- sdg/CallGraph.h - Module call graph + SCC condensation ---*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The module-level call graph: one node per function, one edge per call
/// site, plus the Tarjan SCC condensation the interprocedural analyses
/// schedule over. The condensation is emitted bottom-up (callees before
/// callers) and partitioned into *levels*: SCC level 0 calls nothing
/// outside itself, level k only calls levels < k. All SCCs of one level
/// are independent, so the SDG builder processes a level's SCCs
/// concurrently with the same fixed-pool/atomic-claim discipline as the
/// module pass pipeline — and, because every per-SCC result lands in
/// function-indexed slots, the output is byte-identical for any -j N.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_SDG_CALLGRAPH_H
#define DEPFLOW_SDG_CALLGRAPH_H

#include "ir/Module.h"

#include <string>
#include <vector>

namespace depflow {

class CallGraph {
public:
  /// One textual call site: caller function index, the instruction, and
  /// the resolved callee index. Sites are numbered in module order
  /// (caller index, then block order, then instruction order), which is
  /// the canonical order every SDG table uses.
  struct Site {
    unsigned Caller = 0;
    const CallInst *Call = nullptr;
    unsigned Callee = 0;
  };

  /// Builds the call graph of \p M. Requires verifyModuleCalls(M) to be
  /// clean: every callee must resolve.
  static CallGraph build(const Module &M);

  const Module &module() const { return *M; }
  unsigned numFunctions() const { return unsigned(Callees.size()); }

  const std::vector<Site> &sites() const { return Sites; }
  /// Site indices whose caller is function \p F, in canonical order.
  const std::vector<unsigned> &sitesOf(unsigned F) const { return SitesOf[F]; }
  /// Deduplicated callee function indices of \p F (ascending).
  const std::vector<unsigned> &calleesOf(unsigned F) const {
    return Callees[F];
  }
  /// Deduplicated caller function indices of \p F (ascending).
  const std::vector<unsigned> &callersOf(unsigned F) const {
    return Callers[F];
  }

  // SCC condensation (Tarjan). SCC ids are in bottom-up topological
  // order: every callee of a member of SCC s lives in an SCC with id <= s.
  unsigned numSCCs() const { return unsigned(Members.size()); }
  unsigned sccOf(unsigned F) const { return SCCOf[F]; }
  /// Member function indices of \p SCC, ascending.
  const std::vector<unsigned> &members(unsigned SCC) const {
    return Members[SCC];
  }
  /// True if the SCC has more than one member or a self call.
  bool isRecursive(unsigned SCC) const { return Recursive[SCC]; }

  // Level schedule. Level 0 SCCs call only within themselves; level k
  // SCCs call only levels < k. SCCs within a level are independent.
  unsigned numLevels() const { return unsigned(Levels.size()); }
  unsigned levelOf(unsigned SCC) const { return LevelOf[SCC]; }
  /// SCC ids at \p Level, ascending.
  const std::vector<unsigned> &level(unsigned Level) const {
    return Levels[Level];
  }

  /// GraphViz rendering: functions as nodes (clustered by SCC when
  /// recursive), one edge per deduplicated caller->callee pair.
  std::string toDot() const;

private:
  const Module *M = nullptr;
  std::vector<Site> Sites;
  std::vector<std::vector<unsigned>> SitesOf;
  std::vector<std::vector<unsigned>> Callees;
  std::vector<std::vector<unsigned>> Callers;
  std::vector<unsigned> SCCOf;
  std::vector<std::vector<unsigned>> Members;
  std::vector<char> Recursive;
  std::vector<unsigned> LevelOf;
  std::vector<std::vector<unsigned>> Levels;
};

} // namespace depflow

#endif // DEPFLOW_SDG_CALLGRAPH_H
