//===- sdg/Slicer.h - Interprocedural program slicing -----------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interprocedural slicing over the system dependence graph, in the
/// Horwitz-Reps-Binkley two-phase style. A criterion names a source
/// position (`func:line`); the backward slice is every node the criterion
/// transitively depends on, the forward slice every node that transitively
/// depends on it. Each direction runs two graph traversals:
///
///   backward: phase 1 stays in the criterion's function and its callers
///             (skips param-out edges; summary edges cross calls without
///             descending), phase 2 descends into callees from everything
///             phase 1 marked (skips param-in and call edges).
///   forward:  the dual — phase 1 skips param-in/call, phase 2 skips
///             param-out.
///
/// The backward slice is *executable*: `extractBackwardSlice` clones the
/// module, keeps exactly the sliced instructions (plus every jump and
/// ret), rewires each non-slice conditional branch to `goto` its block's
/// immediate postdominator, and erases unreachable blocks. Because control
/// dependences, io chains (read ordering), and call-transitive value flow
/// are all closed over, the sliced program reproduces the criterion's
/// value trace exactly — the property depflow-fuzz's slice oracle checks
/// differentially (docs/SDG.md).
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_SDG_SLICER_H
#define DEPFLOW_SDG_SLICER_H

#include "sdg/SystemDependenceGraph.h"
#include "support/Error.h"

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace depflow {

enum class SliceDirection { Backward, Forward };

/// A slicing criterion: every instruction of \p Func carrying source line
/// \p Line (plus, for calls, the value the call site receives).
struct SliceCriterion {
  std::string Func;
  unsigned Line = 0;
};

/// Parses "func:line" criterion syntax. Fails on malformed text (empty
/// function name, missing ':', non-numeric or zero line) — the usage-error
/// path (exit code 2 in depflow-opt).
Status parseSliceCriterion(std::string_view Text, SliceCriterion &Out);

/// Resolves \p C against the SDG: the Instr nodes of every instruction at
/// (func, line) plus the actual-out node of every call site on that line.
/// Fails when the function is unknown or no instruction carries the line —
/// the rejected-input path (exit code 1 in depflow-opt).
Status resolveCriterion(const SystemDependenceGraph &G,
                        const SliceCriterion &C, std::vector<unsigned> &Out);

/// Two-phase slice: per-node membership marks (size == G.numNodes()).
std::vector<char> sliceSDG(const SystemDependenceGraph &G,
                           const std::vector<unsigned> &Criterion,
                           SliceDirection Dir);

/// The (function index, source line) pairs the marked nodes cover, sorted,
/// deduplicated, synthesized instructions (line 0) excluded. This is the
/// report form both slice directions print.
std::vector<std::pair<unsigned, unsigned>>
sliceLines(const SystemDependenceGraph &G, const std::vector<char> &Marks);

/// Clones \p M keeping only backward-slice instructions: marked
/// definitions and conditional branches survive, jumps and rets always
/// survive, every other conditional branch is rewired to `goto` the
/// immediate postdominator of its block, and blocks unreachable from the
/// entry are erased. Variable ids, block labels, and source lines are
/// preserved, so a re-run of the sliced module under the same criterion
/// watch reproduces the original value trace.
std::unique_ptr<Module> extractBackwardSlice(const Module &M,
                                             const SystemDependenceGraph &G,
                                             const std::vector<char> &Marks);

} // namespace depflow

#endif // DEPFLOW_SDG_SLICER_H
