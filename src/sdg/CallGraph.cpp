//===- sdg/CallGraph.cpp - Module call graph + SCC condensation -----------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "sdg/CallGraph.h"

#include "support/Casting.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace depflow;

CallGraph CallGraph::build(const Module &M) {
  CallGraph CG;
  CG.M = &M;
  const unsigned N = M.numFunctions();
  CG.SitesOf.resize(N);
  CG.Callees.resize(N);
  CG.Callers.resize(N);

  std::unordered_map<const Function *, unsigned> IndexOf;
  IndexOf.reserve(N);
  for (unsigned FI = 0; FI != N; ++FI)
    IndexOf[M.function(FI)] = FI;

  for (unsigned FI = 0; FI != N; ++FI) {
    const Function *F = M.function(FI);
    for (const auto &BB : F->blocks())
      for (const auto &I : BB->instructions()) {
        const auto *C = dyn_cast<CallInst>(I.get());
        if (!C)
          continue;
        const Function *Callee = M.lookup(C->callee());
        assert(Callee && "CallGraph::build requires resolved callees");
        unsigned CalleeIdx = IndexOf.at(Callee);
        CG.SitesOf[FI].push_back(unsigned(CG.Sites.size()));
        CG.Sites.push_back({FI, C, CalleeIdx});
        CG.Callees[FI].push_back(CalleeIdx);
        CG.Callers[CalleeIdx].push_back(FI);
      }
  }
  for (auto &V : CG.Callees) {
    std::sort(V.begin(), V.end());
    V.erase(std::unique(V.begin(), V.end()), V.end());
  }
  for (auto &V : CG.Callers) {
    std::sort(V.begin(), V.end());
    V.erase(std::unique(V.begin(), V.end()), V.end());
  }

  // Iterative Tarjan. SCCs complete only after every SCC they reach has
  // completed, so the emission index is already a bottom-up topological
  // numbering of the condensation (callee SCC ids < caller SCC ids).
  CG.SCCOf.assign(N, ~0u);
  std::vector<unsigned> Index(N, ~0u), Low(N, 0);
  std::vector<char> OnStack(N, 0);
  std::vector<unsigned> Stack;
  struct Frame {
    unsigned F;
    unsigned NextCallee;
  };
  unsigned NextIndex = 0;
  for (unsigned Root = 0; Root != N; ++Root) {
    if (Index[Root] != ~0u)
      continue;
    std::vector<Frame> Work{{Root, 0}};
    Index[Root] = Low[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = 1;
    while (!Work.empty()) {
      Frame &Top = Work.back();
      const std::vector<unsigned> &Succ = CG.Callees[Top.F];
      if (Top.NextCallee < Succ.size()) {
        unsigned W = Succ[Top.NextCallee++];
        if (Index[W] == ~0u) {
          Index[W] = Low[W] = NextIndex++;
          Stack.push_back(W);
          OnStack[W] = 1;
          Work.push_back({W, 0});
        } else if (OnStack[W]) {
          Low[Top.F] = std::min(Low[Top.F], Index[W]);
        }
        continue;
      }
      unsigned V = Top.F;
      Work.pop_back();
      if (!Work.empty())
        Low[Work.back().F] = std::min(Low[Work.back().F], Low[V]);
      if (Low[V] == Index[V]) {
        unsigned SCC = unsigned(CG.Members.size());
        CG.Members.emplace_back();
        for (;;) {
          unsigned W = Stack.back();
          Stack.pop_back();
          OnStack[W] = 0;
          CG.SCCOf[W] = SCC;
          CG.Members[SCC].push_back(W);
          if (W == V)
            break;
        }
        std::sort(CG.Members[SCC].begin(), CG.Members[SCC].end());
      }
    }
  }

  const unsigned NumSCCs = unsigned(CG.Members.size());
  CG.Recursive.assign(NumSCCs, 0);
  for (unsigned S = 0; S != NumSCCs; ++S)
    if (CG.Members[S].size() > 1)
      CG.Recursive[S] = 1;
  for (const Site &S : CG.Sites)
    if (S.Caller == S.Callee)
      CG.Recursive[CG.SCCOf[S.Caller]] = 1;

  // Levels, in ascending SCC id order (callees always have smaller ids).
  CG.LevelOf.assign(NumSCCs, 0);
  for (unsigned S = 0; S != NumSCCs; ++S) {
    unsigned L = 0;
    for (unsigned F : CG.Members[S])
      for (unsigned Callee : CG.Callees[F])
        if (CG.SCCOf[Callee] != S)
          L = std::max(L, CG.LevelOf[CG.SCCOf[Callee]] + 1);
    CG.LevelOf[S] = L;
    if (CG.Levels.size() <= L)
      CG.Levels.resize(L + 1);
    CG.Levels[L].push_back(S);
  }
  return CG;
}

std::string CallGraph::toDot() const {
  std::string S = "digraph callgraph {\n  rankdir=LR;\n"
                  "  node [shape=box, fontname=\"monospace\"];\n";
  for (unsigned SCC = 0; SCC != numSCCs(); ++SCC) {
    if (Recursive[SCC]) {
      S += "  subgraph cluster_scc" + std::to_string(SCC) +
           " {\n    label=\"scc " + std::to_string(SCC) + " (recursive)\";\n";
      for (unsigned F : Members[SCC])
        S += "    \"" + M->function(F)->name() + "\";\n";
      S += "  }\n";
    }
  }
  for (unsigned F = 0; F != numFunctions(); ++F) {
    S += "  \"" + M->function(F)->name() + "\" [label=\"" +
         M->function(F)->name() + "\\nscc " + std::to_string(SCCOf[F]) +
         ", level " + std::to_string(LevelOf[SCCOf[F]]) + "\"];\n";
    for (unsigned Callee : Callees[F])
      S += "  \"" + M->function(F)->name() + "\" -> \"" +
           M->function(Callee)->name() + "\";\n";
  }
  S += "}\n";
  return S;
}
