//===- sdg/Slicer.cpp - Interprocedural program slicing -------------------===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//

#include "sdg/Slicer.h"

#include "graph/Digraph.h"
#include "graph/Dominators.h"
#include "support/Casting.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

using namespace depflow;

Status depflow::parseSliceCriterion(std::string_view Text,
                                    SliceCriterion &Out) {
  auto Fail = [&] {
    return Status::error("invalid slice criterion '" + std::string(Text) +
                         "': expected func:line");
  };
  std::size_t Colon = Text.rfind(':');
  if (Colon == std::string_view::npos || Colon == 0 ||
      Colon + 1 == Text.size())
    return Fail();
  std::string_view LineText = Text.substr(Colon + 1);
  unsigned Line = 0;
  for (char C : LineText) {
    if (C < '0' || C > '9')
      return Fail();
    Line = Line * 10 + unsigned(C - '0');
    if (Line > 1000000u)
      return Fail();
  }
  if (Line == 0)
    return Fail();
  Out.Func = std::string(Text.substr(0, Colon));
  Out.Line = Line;
  return Status::success();
}

Status depflow::resolveCriterion(const SystemDependenceGraph &G,
                                 const SliceCriterion &C,
                                 std::vector<unsigned> &Out) {
  const Module &M = G.module();
  int FI = -1;
  for (unsigned I = 0; I != M.numFunctions(); ++I)
    if (M.function(I)->name() == C.Func) {
      FI = int(I);
      break;
    }
  if (FI < 0)
    return Status::error("unknown function '" + C.Func +
                         "' in slice criterion");
  Out.clear();
  using NK = SystemDependenceGraph::NodeKind;
  for (unsigned N = 0; N != G.numNodes(); ++N) {
    const SystemDependenceGraph::Node &Nd = G.node(N);
    if (Nd.Func != unsigned(FI) || !Nd.I || Nd.I->line() != C.Line)
      continue;
    // The instruction itself, plus — for calls — the value the site
    // receives (the call's Instr node has no incoming data; arguments and
    // the returned value attach to the site's actual nodes).
    if (Nd.Kind == NK::Instr || Nd.Kind == NK::ActualOut)
      Out.push_back(N);
  }
  if (Out.empty())
    return Status::error("no instruction at line " + std::to_string(C.Line) +
                         " in function '" + C.Func + "'");
  return Status::success();
}

std::vector<char> depflow::sliceSDG(const SystemDependenceGraph &G,
                                    const std::vector<unsigned> &Criterion,
                                    SliceDirection Dir) {
  using EK = SystemDependenceGraph::EdgeKind;
  const bool Fwd = Dir == SliceDirection::Forward;

  auto Phase = [&](std::vector<char> &Mark, auto SkipEdge) {
    std::vector<unsigned> Work;
    for (unsigned N = 0; N != G.numNodes(); ++N)
      if (Mark[N])
        Work.push_back(N);
    while (!Work.empty()) {
      unsigned N = Work.back();
      Work.pop_back();
      for (unsigned EId : (Fwd ? G.outEdges(N) : G.inEdges(N))) {
        const SystemDependenceGraph::Edge &E = G.edge(EId);
        if (SkipEdge(E.Kind))
          continue;
        unsigned Next = Fwd ? E.Dst : E.Src;
        if (!Mark[Next]) {
          Mark[Next] = 1;
          Work.push_back(Next);
        }
      }
    }
  };
  auto SkipDescend = [](EK K) { return K == EK::ParamOut; };
  auto SkipAscend = [](EK K) { return K == EK::ParamIn || K == EK::Call; };

  std::vector<char> Mark(G.numNodes(), 0);
  for (unsigned N : Criterion)
    Mark[N] = 1;
  if (!Fwd) {
    Phase(Mark, SkipDescend); // Criterion's function and callers.
    Phase(Mark, SkipAscend);  // Descend into callees, never back up.
  } else {
    Phase(Mark, SkipAscend);  // Criterion's function and callees' callers.
    Phase(Mark, SkipDescend); // Descend into callees.
  }
  return Mark;
}

std::vector<std::pair<unsigned, unsigned>>
depflow::sliceLines(const SystemDependenceGraph &G,
                    const std::vector<char> &Marks) {
  std::vector<std::pair<unsigned, unsigned>> Lines;
  for (unsigned N = 0; N != G.numNodes(); ++N) {
    if (!Marks[N])
      continue;
    const SystemDependenceGraph::Node &Nd = G.node(N);
    if (Nd.I && Nd.I->line())
      Lines.push_back({Nd.Func, Nd.I->line()});
  }
  std::sort(Lines.begin(), Lines.end());
  Lines.erase(std::unique(Lines.begin(), Lines.end()), Lines.end());
  return Lines;
}

namespace {

/// Clones \p F into a fresh function keeping only instructions in
/// \p Kept, with non-kept conditional branches rewired to the immediate
/// postdominator of their block.
std::unique_ptr<Function>
sliceFunction(const Function &F,
              const std::unordered_set<const Instruction *> &Kept) {
  auto NF = std::make_unique<Function>(F.name());
  // Same variable ids (the interner assigns densely in insertion order),
  // same parameters, same block ids and labels.
  for (VarId V = 0; V != F.numVars(); ++V)
    NF->makeVar(F.varName(V));
  for (VarId P : F.params())
    NF->addParam(P);
  std::vector<BasicBlock *> BlockMap(F.numBlocks());
  for (const auto &BB : F.blocks())
    BlockMap[BB->id()] = NF->makeBlock(BB->label());

  // Immediate postdominators of the original CFG, for rewiring skipped
  // branches past the region they guard (every instruction in that region
  // is control-dependent on the branch, hence also outside the slice).
  DomTree PDT(cfgDigraph(F).reversed(), F.exit()->id());

  for (const auto &BB : F.blocks()) {
    BasicBlock *NB = BlockMap[BB->id()];
    for (const auto &IPtr : BB->instructions()) {
      const Instruction *I = IPtr.get();
      Instruction *Clone = nullptr;
      if (const auto *T = dyn_cast<JumpInst>(I)) {
        Clone = NB->setJump(BlockMap[T->target()->id()]);
      } else if (const auto *T = dyn_cast<RetInst>(I)) {
        Clone = NB->setRet(T->operands());
      } else if (const auto *T = dyn_cast<CondBrInst>(I)) {
        if (Kept.count(I)) {
          Clone = NB->setCondBr(T->cond(), BlockMap[T->trueTarget()->id()],
                                BlockMap[T->falseTarget()->id()]);
        } else {
          int IPD = PDT.idom(BB->id());
          assert(IPD >= 0 && "branch block without a postdominator");
          NB->setJump(BlockMap[unsigned(IPD)]); // Synthesized: line 0.
          continue;
        }
      } else if (!Kept.count(I)) {
        continue;
      } else if (const auto *D = dyn_cast<CopyInst>(I)) {
        Clone = NB->appendCopy(D->def(), D->src());
      } else if (const auto *D = dyn_cast<UnaryInst>(I)) {
        Clone = NB->appendUnary(D->def(), D->op(), D->src());
      } else if (const auto *D = dyn_cast<BinaryInst>(I)) {
        Clone = NB->appendBinary(D->def(), D->op(), D->lhs(), D->rhs());
      } else if (const auto *D = dyn_cast<ReadInst>(I)) {
        Clone = NB->appendRead(D->def());
      } else if (const auto *D = dyn_cast<CallInst>(I)) {
        Clone = NB->appendCall(D->def(), D->callee(), D->operands());
      } else {
        assert(false && "unexpected instruction kind in slice extraction");
      }
      if (Clone)
        Clone->setLine(I->line());
    }
  }

  // Drop blocks the rewiring made unreachable.
  std::vector<bool> Keep(NF->numBlocks(), false);
  std::vector<BasicBlock *> Work{NF->entry()};
  Keep[NF->entry()->id()] = true;
  while (!Work.empty()) {
    BasicBlock *B = Work.back();
    Work.pop_back();
    for (BasicBlock *S : B->successors())
      if (!Keep[S->id()]) {
        Keep[S->id()] = true;
        Work.push_back(S);
      }
  }
  NF->eraseBlocks(Keep);
  return NF;
}

} // namespace

std::unique_ptr<Module>
depflow::extractBackwardSlice(const Module &M, const SystemDependenceGraph &G,
                              const std::vector<char> &Marks) {
  assert(&G.module() == &M && "marks must come from this module's SDG");
  // An instruction survives when any of its nodes is marked; for calls the
  // actual-in/out nodes count (a call can be in the slice purely for its
  // io effect or its returned value).
  std::unordered_set<const Instruction *> Kept;
  using NK = SystemDependenceGraph::NodeKind;
  for (unsigned N = 0; N != G.numNodes(); ++N) {
    if (!Marks[N])
      continue;
    const SystemDependenceGraph::Node &Nd = G.node(N);
    switch (Nd.Kind) {
    case NK::Instr:
    case NK::ActualIn:
    case NK::ActualIOIn:
    case NK::ActualOut:
    case NK::ActualIOOut:
      Kept.insert(Nd.I);
      break;
    default:
      break;
    }
  }

  auto NM = std::make_unique<Module>(M.name());
  for (unsigned FI = 0; FI != M.numFunctions(); ++FI) {
    Status S = NM->addFunction(sliceFunction(*M.function(FI), Kept));
    assert(S.ok() && "clone preserves unique names");
    (void)S;
  }
  return NM;
}
