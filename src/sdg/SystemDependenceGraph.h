//===- sdg/SystemDependenceGraph.h - Interprocedural SDG --------*- C++ -*-===//
//
// Part of the depflow project: a reproduction of "Dependence-Based Program
// Analysis" (Johnson & Pingali, PLDI 1993).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The system dependence graph (Horwitz-Reps-Binkley): per-function program
/// dependence graphs — data dependence derived from the paper's dependence
/// flow graph, control dependence from the factored CDG machinery — stitched
/// together at call sites through explicit parameter-passing nodes:
///
///   * `Entry`      — one per function; call edges target it.
///   * `Instr`      — one per IR instruction (definitions and terminators).
///   * `FormalIn`   — one per parameter, a definition point at `Entry`.
///   * `FormalOut`  — the function's return value (first `ret` operand).
///   * `ActualIn`   — one per call-site argument.
///   * `ActualOut`  — the value a call site receives.
///   * `FormalIOIn/FormalIOOut`, `ActualIOIn/ActualIOOut` — the *io
///     pseudo-state*: `read()` consumes a stream shared by every frame, so
///     reads and calls to may-read callees both use and define an implicit
///     io variable. Threading io through parameter nodes is what makes
///     slices reproduce input-consuming behavior exactly (docs/SDG.md).
///
/// Edges: `Control` (branch → dependent, entry/call → parameter nodes),
/// `Data` (def → use, io chains included), `Call` (call instr → callee
/// entry), `ParamIn` (actual-in → formal-in), `ParamOut` (formal-out →
/// actual-out), and `Summary` (actual-in → actual-out: the callee's
/// transitive formal-in → formal-out dependence projected onto the site,
/// which lets slicing cross a call without descending).
///
/// The build is scheduled over the call graph's SCC condensation:
/// per-function PDGs are embarrassingly parallel (one task per function,
/// atomic-index claiming — the module pipeline's fixed-pool discipline);
/// summary computation walks condensation levels bottom-up, the SCCs
/// inside one level claimed concurrently by the same pool. Every result
/// lands in function- or SCC-indexed slots and every counter mutation
/// commutes, so stats and counters are byte-identical for any `Jobs` value.
///
//===----------------------------------------------------------------------===//

#ifndef DEPFLOW_SDG_SYSTEMDEPENDENCEGRAPH_H
#define DEPFLOW_SDG_SYSTEMDEPENDENCEGRAPH_H

#include "sdg/CallGraph.h"

#include <string>
#include <vector>

namespace depflow {

struct SDGBuildOptions {
  /// Worker threads for the per-function and per-SCC phases; 0 = one per
  /// hardware thread (min 1). Output is byte-identical for any value.
  unsigned Jobs = 1;
};

class SystemDependenceGraph {
public:
  enum class NodeKind : std::uint8_t {
    Entry,
    Instr,
    FormalIn,
    FormalIOIn,
    FormalOut,
    FormalIOOut,
    ActualIn,
    ActualIOIn,
    ActualOut,
    ActualIOOut,
  };

  enum class EdgeKind : std::uint8_t {
    Control,
    Data,
    Call,
    ParamIn,
    ParamOut,
    Summary,
  };

  struct Node {
    NodeKind Kind;
    /// Owning function index. Actual* nodes belong to the *caller*.
    unsigned Func = 0;
    /// Instr: the instruction. Actual*: the call instruction of the site.
    const Instruction *I = nullptr;
    /// FormalIn: parameter index. ActualIn: argument index.
    /// Actual*: call-site index (CallGraph::sites() numbering) — for
    /// ActualIn both are packed: Aux = site, Aux2 = argument index.
    unsigned Aux = 0;
    unsigned Aux2 = 0;
  };

  struct Edge {
    unsigned Src;
    unsigned Dst;
    EdgeKind Kind;
  };

  struct Stats {
    unsigned Nodes = 0;
    unsigned Edges = 0;
    unsigned SummaryEdges = 0;
    unsigned CallSites = 0;
    unsigned SCCs = 0;
    unsigned Levels = 0;
    unsigned SummaryRounds = 0;
  };

  /// Builds the SDG of \p M. Requires: every function verifies
  /// (verifyFunction), is phi-free, and verifyModuleCalls(M) is clean.
  /// \p M is non-const only because the DFG builder takes Function&; the
  /// module text is not modified.
  static SystemDependenceGraph build(Module &M,
                                     const SDGBuildOptions &Opts = {});

  const CallGraph &callGraph() const { return CG; }
  const Module &module() const { return *M; }

  unsigned numNodes() const { return unsigned(Nodes.size()); }
  unsigned numEdges() const { return unsigned(Edges.size()); }
  const Node &node(unsigned Id) const { return Nodes[Id]; }
  const Edge &edge(unsigned Id) const { return Edges[Id]; }
  const std::vector<unsigned> &outEdges(unsigned NodeId) const {
    return Out[NodeId];
  }
  const std::vector<unsigned> &inEdges(unsigned NodeId) const {
    return In[NodeId];
  }

  // Per-function nodes (-1 when absent).
  unsigned entryNode(unsigned F) const { return EntryOf[F]; }
  int formalIn(unsigned F, unsigned Param) const {
    return FormalIns[F][Param];
  }
  int formalOut(unsigned F) const { return FormalOutOf[F]; }
  int formalIOIn(unsigned F) const { return FormalIOInOf[F]; }
  int formalIOOut(unsigned F) const { return FormalIOOutOf[F]; }

  // Per-site nodes (CallGraph::sites() numbering; -1 when absent).
  int actualIn(unsigned Site, unsigned Arg) const {
    return ActualIns[Site][Arg];
  }
  int actualOut(unsigned Site) const { return ActualOutOf[Site]; }
  int actualIOIn(unsigned Site) const { return ActualIOInOf[Site]; }
  int actualIOOut(unsigned Site) const { return ActualIOOutOf[Site]; }

  /// The Instr node of \p I (which must belong to function \p F), or -1.
  int instrNode(unsigned F, const Instruction *I) const;

  /// True if \p F contains a read() or transitively calls one.
  bool mayRead(unsigned F) const { return MayRead[F] != 0; }

  const Stats &stats() const { return BuildStats; }

  static const char *nodeKindName(NodeKind K);
  static const char *edgeKindName(EdgeKind K);

  /// Human-readable node label for diagnostics and dot output.
  std::string nodeLabel(unsigned Id) const;

  /// GraphViz rendering (functions as clusters, edge kind styling).
  std::string toDot() const;

private:
  Module *M = nullptr;
  CallGraph CG;
  std::vector<Node> Nodes;
  std::vector<Edge> Edges;
  std::vector<std::vector<unsigned>> Out, In;

  std::vector<unsigned> EntryOf;
  std::vector<std::vector<int>> FormalIns;
  std::vector<int> FormalOutOf, FormalIOInOf, FormalIOOutOf;
  std::vector<std::vector<int>> ActualIns;
  std::vector<int> ActualOutOf, ActualIOInOf, ActualIOOutOf;
  std::vector<char> MayRead;

  /// Per function: instruction pointer -> node id, sorted for lookup.
  std::vector<std::vector<std::pair<const Instruction *, unsigned>>> InstrMap;

  Stats BuildStats;

  friend class SDGBuilder;
};

} // namespace depflow

#endif // DEPFLOW_SDG_SYSTEMDEPENDENCEGRAPH_H
